open Amos_ir
module Nd = Amos_tensor.Nd

type node_id = int

type node =
  | Input of int list
  | Op of Operator.t * node_id
  | Add of node_id * node_id
  | Relu of node_id
  | Concat of int * node_id * node_id
  | Reshape of int list * node_id
  | Permute of int list * node_id

type t = {
  nodes : node array;  (* index = node_id, topologically ordered *)
  output : node_id;
}

let shape_of_node nodes id =
  let rec go id =
    match nodes.(id) with
    | Input shape -> shape
    | Op (op, _) -> op.Operator.output.Operator.tensor.Tensor_decl.shape
    | Add (a, _) -> go a
    | Relu a -> go a
    | Concat (axis, a, b) ->
        List.mapi
          (fun i d -> if i = axis then d + List.nth (go b) i else d)
          (go a)
    | Reshape (shape, _) -> shape
    | Permute (perm, a) ->
        let sa = Array.of_list (go a) in
        List.map (fun i -> sa.(i)) perm
  in
  go id

module Builder = struct
  type graph = t

  type b = {
    mutable acc : node list;  (* reversed *)
    mutable count : int;
  }

  let create () = { acc = []; count = 0 }

  let push b node =
    b.acc <- node :: b.acc;
    b.count <- b.count + 1;
    b.count - 1

  let nodes_so_far b = Array.of_list (List.rev b.acc)

  let shape b id = shape_of_node (nodes_so_far b) id

  let check_id b id =
    if id < 0 || id >= b.count then invalid_arg "Graph: unknown node id"

  let input b sh =
    if sh = [] then invalid_arg "Graph.input: empty shape";
    push b (Input sh)

  let op b operator src =
    check_id b src;
    let expected =
      match operator.Operator.inputs with
      | first :: _ -> first.Operator.tensor.Tensor_decl.shape
      | [] -> invalid_arg "Graph.op: operator without inputs"
    in
    if shape b src <> expected then
      invalid_arg
        (Printf.sprintf "Graph.op: %s expects input [%s], got [%s]"
           operator.Operator.name
           (String.concat ";" (List.map string_of_int expected))
           (String.concat ";" (List.map string_of_int (shape b src))));
    push b (Op (operator, src))

  let add b x y =
    check_id b x;
    check_id b y;
    if shape b x <> shape b y then invalid_arg "Graph.add: shape mismatch";
    push b (Add (x, y))

  let relu b x =
    check_id b x;
    push b (Relu x)

  let concat b ~axis x y =
    check_id b x;
    check_id b y;
    let sx = shape b x and sy = shape b y in
    if List.length sx <> List.length sy then
      invalid_arg "Graph.concat: rank mismatch";
    if axis < 0 || axis >= List.length sx then
      invalid_arg "Graph.concat: bad axis";
    List.iteri
      (fun i (dx, dy) ->
        if i <> axis && dx <> dy then
          invalid_arg "Graph.concat: non-axis dims must match")
      (List.combine sx sy);
    push b (Concat (axis, x, y))

  let reshape b new_shape src =
    check_id b src;
    if new_shape = [] || List.exists (fun d -> d <= 0) new_shape then
      invalid_arg "Graph.reshape: bad shape";
    let elems l = List.fold_left ( * ) 1 l in
    if elems new_shape <> elems (shape b src) then
      invalid_arg "Graph.reshape: element count mismatch";
    push b (Reshape (new_shape, src))

  let permute b perm src =
    check_id b src;
    let rank = List.length (shape b src) in
    if List.sort Int.compare perm <> List.init rank (fun i -> i) then
      invalid_arg "Graph.permute: not a permutation of axes";
    push b (Permute (perm, src))

  let finish b ~output =
    check_id b output;
    { nodes = nodes_so_far b; output }
end

let shape_of t id = shape_of_node t.nodes id
let output_shape t = shape_of t t.output

let input_shape t =
  let found = ref None in
  Array.iter
    (function
      | Input sh -> if !found = None then found := Some sh
      | Op _ | Add _ | Relu _ | Concat _ | Reshape _ | Permute _ -> ())
    t.nodes;
  match !found with
  | Some sh -> sh
  | None -> invalid_arg "Graph: no input node"

let tensor_ops t =
  Array.to_list t.nodes
  |> List.filter_map (function
       | Op (op, _) -> Some op
       | Input _ | Add _ | Relu _ | Concat _ | Reshape _ | Permute _ -> None)

let random_weights rng t =
  List.concat
    (Array.to_list
       (Array.mapi
          (fun id node ->
            match node with
            | Op (op, _) ->
                let ws =
                  List.filteri (fun i _ -> i > 0) op.Operator.inputs
                  |> List.map (fun (acc : Operator.access) ->
                         Nd.random_of_decl rng acc.Operator.tensor)
                in
                [ (id, ws) ]
            | Input _ | Add _ | Relu _ | Concat _ | Reshape _ | Permute _ -> [])
          t.nodes))

let concat_nd axis a b =
  let sa = Nd.shape a and sb = Nd.shape b in
  let out_shape =
    List.mapi (fun i d -> if i = axis then d + List.nth sb i else d) sa
  in
  let out = Nd.create out_shape in
  let copy src offset =
    let sh = Array.of_list (Nd.shape src) in
    let idx = Array.make (Array.length sh) 0 in
    let rec go i =
      if i = Array.length sh then begin
        let dst_idx = Array.copy idx in
        dst_idx.(axis) <- dst_idx.(axis) + offset;
        Nd.set out dst_idx (Nd.get src idx)
      end
      else
        for v = 0 to sh.(i) - 1 do
          idx.(i) <- v;
          go (i + 1)
        done
    in
    go 0
  in
  copy a 0;
  copy b (List.nth sa axis);
  out

let run_with exec t ~input ~weights =
  let values = Array.make (Array.length t.nodes) None in
  let get id =
    match values.(id) with
    | Some v -> v
    | None -> invalid_arg "Graph: node evaluated out of order"
  in
  Array.iteri
    (fun id node ->
      let v =
        match node with
        | Input _ -> input
        | Op (op, src) ->
            let ws = try List.assoc id weights with Not_found -> [] in
            exec op (get src :: ws)
        | Add (a, b) -> Nd.map2 ( +. ) (get a) (get b)
        | Relu a ->
            let out = Nd.copy (get a) in
            for i = 0 to Nd.num_elems out - 1 do
              Nd.set_flat out i (Float.max 0. (Nd.get_flat out i))
            done;
            out
        | Concat (axis, a, b) -> concat_nd axis (get a) (get b)
        | Reshape (shape, a) ->
            let src = get a in
            let out = Nd.create shape in
            for i = 0 to Nd.num_elems src - 1 do
              Nd.set_flat out i (Nd.get_flat src i)
            done;
            out
        | Permute (perm, a) ->
            let src = get a in
            let sa = Array.of_list (Nd.shape src) in
            let perm_a = Array.of_list perm in
            let out = Nd.create (List.map (fun i -> sa.(i)) perm) in
            let idx = Array.make (Array.length sa) 0 in
            let rec go i =
              if i = Array.length sa then
                Nd.set out (Array.map (fun p -> idx.(p)) perm_a) (Nd.get src idx)
              else
                for v = 0 to sa.(i) - 1 do
                  idx.(i) <- v;
                  go (i + 1)
                done
            in
            go 0;
            out
      in
      values.(id) <- Some v)
    t.nodes;
  get t.output

let run_reference t ~input ~weights =
  run_with (fun op inputs -> Amos_tensor.Reference.run op ~inputs) t ~input
    ~weights

let run_compiled ~rng accel t ~input ~weights =
  let exec op inputs =
    match Explore.tune_op ~population:6 ~generations:2 ~rng ~accel op with
    | Some result when result.Explore.best.Explore.measured < infinity ->
        let c = result.Explore.best.Explore.candidate in
        let kernel = Codegen.lower accel c.Explore.mapping c.Explore.schedule in
        Spatial_sim.Machine.run accel.Accelerator.config kernel ~inputs
          ~out_shape:op.Operator.output.Operator.tensor.Tensor_decl.shape
    | Some _ | None -> Spatial_sim.Scalar_backend.run op ~inputs
  in
  run_with exec t ~input ~weights

let shufflenet_unit ?(groups = 2) ?(channels_per_group = 2) ?(hw = 4) () =
  let g = groups and cg = channels_per_group in
  let c = g * cg in
  let n = 2 in
  let b = Builder.create () in
  (* the depthwise 3x3 consumes a (hw+2)x(hw+2) window; start from the
     padded size so the residual shapes line up after the window shrink *)
  let big = hw + 2 in
  let x = Builder.input b [ n; c; big; big ] in
  let g1 =
    Builder.op b
      (Amos_workloads.Ops.grouped_conv2d ~name:"su-g1x1a" ~groups:g ~n ~c:cg
         ~k:cg ~p:big ~q:big ~r:1 ~s:1 ())
      (Builder.reshape b [ n; g; cg; big; big ] x)
  in
  let r1 = Builder.relu b g1 in
  (* channel shuffle: [n; g; cg; h; w] -> transpose (g, cg) -> flatten *)
  let shuffled = Builder.permute b [ 0; 2; 1; 3; 4 ] r1 in
  let flat = Builder.reshape b [ n; c; big; big ] shuffled in
  let dw =
    Builder.op b
      (Amos_workloads.Ops.depthwise_conv2d ~name:"su-dw3x3" ~n ~c ~p:hw ~q:hw
         ~r:3 ~s:3 ())
      flat
  in
  let g2 =
    Builder.op b
      (Amos_workloads.Ops.grouped_conv2d ~name:"su-g1x1b" ~groups:g ~n ~c:cg
         ~k:cg ~p:hw ~q:hw ~r:1 ~s:1 ())
      (Builder.reshape b [ n; g; cg; hw; hw ] dw)
  in
  let g2_flat = Builder.reshape b [ n; c; hw; hw ] g2 in
  (* residual branch: a 3x3 projection conv shrinks the spatial size the
     same way the depthwise path does, so the shapes line up for the add *)
  let proj =
    Builder.op b
      (Amos_workloads.Ops.conv2d ~name:"su-proj" ~n ~c ~k:c ~p:hw ~q:hw ~r:3
         ~s:3 ())
      flat
  in
  let summed = Builder.add b g2_flat (Builder.relu b proj) in
  let out = Builder.relu b summed in
  Builder.finish b ~output:out

let residual_block ?(channels = 4) ?(hw = 5) () =
  let c = channels in
  let b = Builder.create () in
  let x = Builder.input b [ 2; c; hw; hw ] in
  let conv name = Amos_workloads.Ops.conv2d ~name ~n:2 ~c ~k:c ~p:hw ~q:hw ~r:1 ~s:1 () in
  let h1 = Builder.op b (conv "res-conv1") x in
  let h2 = Builder.relu b h1 in
  let h3 = Builder.op b (conv "res-conv2") h2 in
  let h4 = Builder.add b h3 x in
  let out = Builder.relu b h4 in
  Builder.finish b ~output:out

let branch_block ?(channels = 4) ?(hw = 5) () =
  let c = channels in
  let b = Builder.create () in
  let x = Builder.input b [ 2; c; hw; hw ] in
  let conv name k =
    Amos_workloads.Ops.conv2d ~name ~n:2 ~c ~k ~p:hw ~q:hw ~r:1 ~s:1 ()
  in
  let left = Builder.op b (conv "branch-a" c) x in
  let right = Builder.op b (conv "branch-b" (2 * c)) x in
  let merged = Builder.concat b ~axis:1 left right in
  let out = Builder.relu b merged in
  Builder.finish b ~output:out
