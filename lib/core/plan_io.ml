open Amos_ir

type provenance = {
  source_accel : string;
  source_fingerprint : string;
}

let save ?provenance ?tuning_seconds (m : Mapping.t) (sched : Schedule.t) =
  let matching = m.Mapping.matching in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "intrinsic %s\n" matching.Matching.intr.Intrinsic.name);
  (* provenance and tuning cost ride as extra header lines: [load]
     ignores unknown keys, so plans saved with them still parse under
     older readers and vice versa *)
  (match provenance with
  | Some p ->
      Buffer.add_string b
        (Printf.sprintf "provenance %s %s\n" p.source_fingerprint
           p.source_accel)
  | None -> ());
  (match tuning_seconds with
  | Some s -> Buffer.add_string b (Printf.sprintf "tuned_in %.6f\n" s)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "src_perm %s\n"
       (String.concat ","
          (Array.to_list (Array.map string_of_int matching.Matching.src_perm))));
  let assigns =
    List.filter_map
      (fun ((s : Iter.t), (k : Iter.t)) ->
        Some (Printf.sprintf "%s=%s" s.Iter.name k.Iter.name))
      (Matching.mapped matching)
  in
  Buffer.add_string b (Printf.sprintf "assign %s\n" (String.concat " " assigns));
  List.iteri
    (fun i (d : Schedule.dim) ->
      let sp = sched.Schedule.splits.(i) in
      Buffer.add_string b
        (Printf.sprintf "split %s %d %d %d\n" d.Schedule.name sp.Schedule.block
           sp.Schedule.subcore sp.Schedule.serial))
    (Schedule.dims m);
  Buffer.add_string b (Printf.sprintf "stage %d\n" sched.Schedule.stage_depth);
  Buffer.add_string b (Printf.sprintf "unroll %d\n" sched.Schedule.unroll);
  Buffer.add_string b
    (Printf.sprintf "vectorize %b\n" sched.Schedule.vectorize);
  Buffer.contents b

let split_ws line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let provenance text =
  String.split_on_char '\n' text
  |> List.find_map (fun l ->
         match split_ws l with
         | "provenance" :: fp :: rest when rest <> [] ->
             Some
               { source_fingerprint = fp; source_accel = String.concat " " rest }
         | _ -> None)

let tuning_seconds text =
  String.split_on_char '\n' text
  |> List.find_map (fun l ->
         match split_ws l with
         | [ "tuned_in"; s ] -> float_of_string_opt s
         | _ -> None)

let load accel (op : Operator.t) text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let field key =
    List.find_map
      (fun l ->
        match split_ws l with
        | k :: rest when k = key -> Some rest
        | _ -> None)
      lines
  in
  let ( let* ) = Option.bind in
  let* intr_name = field "intrinsic" in
  let* intr =
    List.find_opt
      (fun (i : Intrinsic.t) -> [ i.Intrinsic.name ] = intr_name
                                || String.concat " " intr_name = i.Intrinsic.name)
      accel.Accelerator.intrinsics
  in
  let* perm_s = field "src_perm" in
  let* src_perm =
    match perm_s with
    | [ one ] -> (
        try
          Some
            (Array.of_list
               (List.map int_of_string (String.split_on_char ',' one)))
        with Failure _ -> None)
    | _ -> None
  in
  let* assigns = field "assign" in
  let* view = Mac_view.of_operator op in
  let intr_iter_by_name name =
    List.find_opt
      (fun (k : Iter.t) -> k.Iter.name = name)
      intr.Intrinsic.compute.Compute_abs.iters
  in
  let parse_assign s =
    match String.split_on_char '=' s with
    | [ sw; k ] -> Some (sw, k)
    | _ -> None
  in
  let* pairs =
    List.fold_left
      (fun acc s ->
        match (acc, parse_assign s) with
        | Some l, Some p -> Some (p :: l)
        | _, _ -> None)
      (Some []) assigns
  in
  let assign =
    Array.of_list
      (List.map
         (fun (it : Iter.t) ->
           match List.assoc_opt it.Iter.name pairs with
           | Some kname -> intr_iter_by_name kname
           | None -> None)
         op.Operator.iters)
  in
  (* every named assignment must have resolved *)
  let resolved =
    List.for_all
      (fun (sw, k) ->
        List.exists (fun (it : Iter.t) -> it.Iter.name = sw) op.Operator.iters
        && intr_iter_by_name k <> None)
      pairs
  in
  if not resolved then None
  else
    let* matching =
      match Matching.create ~view ~intr ~src_perm ~assign with
      | m -> if Matching.validate m then Some m else None
      | exception Invalid_argument _ -> None
    in
    let mapping = Mapping.make matching in
    let dims = Schedule.dims mapping in
    let* splits =
      List.fold_left
        (fun acc (d : Schedule.dim) ->
          let* acc = acc in
          let* parts =
            List.find_map
              (fun l ->
                match split_ws l with
                | [ "split"; name; b'; w; s ] when name = d.Schedule.name -> (
                    try
                      Some
                        {
                          Schedule.block = int_of_string b';
                          subcore = int_of_string w;
                          serial = int_of_string s;
                        }
                    with Failure _ -> None)
                | _ -> None)
              lines
          in
          Some (parts :: acc))
        (Some []) dims
    in
    let int_field key =
      let* v = field key in
      match v with
      | [ one ] -> int_of_string_opt one
      | _ -> None
    in
    let* stage_depth = int_field "stage" in
    let* unroll = int_field "unroll" in
    let* vectorize =
      let* v = field "vectorize" in
      match v with
      | [ one ] -> bool_of_string_opt one
      | _ -> None
    in
    let sched =
      {
        Schedule.splits = Array.of_list (List.rev splits);
        stage_depth;
        unroll;
        vectorize;
      }
    in
    if Schedule.validate mapping sched then Some (mapping, sched) else None
