(** Lowering: physical mapping + schedule -> executable simulator kernel.

    The lowering realises the paper's code-generation step (Sec 6): outer
    loops are bound to cores / sub-cores / serial execution per the
    schedule; each innermost step loads one register tile per operand
    through the memory mapping, issues one compute intrinsic, and stores
    the destination tile.

    The register-tile fetch functions emulate hardware dataflow exactly:
    an operand's tile slot is addressed only by the intrinsic iterations
    that operand declares (its slots).  If a mapping routes a software
    iteration an operand needs through an intrinsic iteration the operand
    cannot see, the load picks a fixed coordinate — as real hardware
    would — and the kernel computes wrong results.  This is what makes
    Algorithm-1 validity observable end-to-end. *)

val lower :
  Accelerator.t -> Mapping.t -> Schedule.t -> Spatial_sim.Kernel.t
(** Raises [Invalid_argument] when the schedule does not fit the mapping
    ({!Schedule.validate}). *)

val emit_pseudo : Accelerator.t -> Mapping.t -> Schedule.t -> string
(** Human-readable pseudo-kernel (CUDA-flavoured) for inspection. *)
