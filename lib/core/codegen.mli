(** Lowering: physical mapping + schedule -> executable simulator kernel.

    The lowering realises the paper's code-generation step (Sec 6): outer
    loops are bound to cores / sub-cores / serial execution per the
    schedule; each innermost step loads one register tile per operand
    through the memory mapping, issues one compute intrinsic, and stores
    the destination tile.

    The register-tile fetch functions emulate hardware dataflow exactly:
    an operand's tile slot is addressed only by the intrinsic iterations
    that operand declares (its slots).  If a mapping routes a software
    iteration an operand needs through an intrinsic iteration the operand
    cannot see, the load picks a fixed coordinate — as real hardware
    would — and the kernel computes wrong results.  This is what makes
    Algorithm-1 validity observable end-to-end. *)

val lower :
  Accelerator.t -> Mapping.t -> Schedule.t -> Spatial_sim.Kernel.t
(** Raises [Invalid_argument] when the schedule does not fit the mapping
    ({!Schedule.validate}).  Equivalent to
    [lower_prepared (prepare accel m) sched]. *)

type prepared
(** The schedule-independent half of lowering: iteration roles, operand
    slot positions, tile shapes, source kinds, memory-efficiency score.
    A genetic search lowers hundreds of schedules against one mapping;
    preparing once and calling {!lower_prepared} per schedule skips all of
    that recomputation while producing bit-identical kernels. *)

val prepare : Accelerator.t -> Mapping.t -> prepared

val lower_prepared : prepared -> Schedule.t -> Spatial_sim.Kernel.t
(** Raises [Invalid_argument] when the schedule does not fit the prepared
    mapping. *)

val summarize_prepared :
  prepared -> Schedule.t -> Spatial_sim.Kernel.summary
(** [Spatial_sim.Kernel.summarize (lower_prepared p sched)] without
    building the kernel: the level parallelism products fold the split
    factors directly and the timing metadata is shared with the real
    lowering, so the summary is bit-identical field by field.  This is
    what the tuner's model screening runs on.  Raises like
    {!lower_prepared}. *)

val emit_pseudo : Accelerator.t -> Mapping.t -> Schedule.t -> string
(** Human-readable pseudo-kernel (CUDA-flavoured) for inspection. *)
