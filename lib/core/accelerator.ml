module Mc = Spatial_sim.Machine_config

type t = {
  name : string;
  config : Mc.t;
  intrinsics : Intrinsic.t list;
}

let create ~name ~config ~intrinsics = { name; config; intrinsics }

let v100 () =
  create ~name:"V100"
    ~config:
      (Mc.create ~name:"V100" ~clock_ghz:1.53 ~num_cores:80
         ~subcores_per_core:4 ~shared_capacity_bytes:(96 * 1024)
         ~reg_capacity_elems:512 ~global_bandwidth_gbs:900.
         ~shared_bandwidth_gbs:200. ~launch_overhead_us:5. ~scalar_flops:15700.
         ~max_blocks_per_core:16)
    ~intrinsics:
      [
        Intrinsic.wmma_16x16x16 (); Intrinsic.wmma_32x8x16 ();
        Intrinsic.wmma_8x32x16 ();
      ]

let a100 () =
  create ~name:"A100"
    ~config:
      (Mc.create ~name:"A100" ~clock_ghz:1.41 ~num_cores:108
         ~subcores_per_core:4 ~shared_capacity_bytes:(164 * 1024)
         ~reg_capacity_elems:512 ~global_bandwidth_gbs:1555.
         ~shared_bandwidth_gbs:260. ~launch_overhead_us:4. ~scalar_flops:19500.
         ~max_blocks_per_core:16)
    ~intrinsics:
      [
        { (Intrinsic.wmma_16x16x16 ()) with Intrinsic.issue_cycles = 4. };
        { (Intrinsic.wmma_32x8x16 ()) with Intrinsic.issue_cycles = 4. };
        { (Intrinsic.wmma_8x32x16 ()) with Intrinsic.issue_cycles = 4. };
      ]

let avx512_cpu () =
  create ~name:"Xeon-AVX512"
    ~config:
      (Mc.create ~name:"Xeon-AVX512" ~clock_ghz:2.1 ~num_cores:8
         ~subcores_per_core:2 ~shared_capacity_bytes:(1024 * 1024)
         ~reg_capacity_elems:128 ~global_bandwidth_gbs:60.
         ~shared_bandwidth_gbs:100. ~launch_overhead_us:0.5 ~scalar_flops:130.
         ~max_blocks_per_core:2)
    ~intrinsics:[ Intrinsic.avx512_vnni () ]

let mali_g76 () =
  create ~name:"Mali-G76"
    ~config:
      (Mc.create ~name:"Mali-G76" ~clock_ghz:0.72 ~num_cores:12
         ~subcores_per_core:3 ~shared_capacity_bytes:(32 * 1024)
         ~reg_capacity_elems:64 ~global_bandwidth_gbs:28.
         ~shared_bandwidth_gbs:40. ~launch_overhead_us:10. ~scalar_flops:100.
         ~max_blocks_per_core:4)
    ~intrinsics:[ Intrinsic.mali_dot4 () ]

let ascend_like () =
  create ~name:"Ascend-like"
    ~config:
      (Mc.create ~name:"Ascend-like" ~clock_ghz:1.0 ~num_cores:32
         ~subcores_per_core:2 ~shared_capacity_bytes:(192 * 1024)
         ~reg_capacity_elems:512 ~global_bandwidth_gbs:1000.
         ~shared_bandwidth_gbs:250. ~launch_overhead_us:3. ~scalar_flops:4000.
         ~max_blocks_per_core:8)
    ~intrinsics:[ Intrinsic.ascend_cube (); Intrinsic.ascend_vector () ]

let virtual_cfg name =
  Mc.create ~name ~clock_ghz:1.0 ~num_cores:16 ~subcores_per_core:4
    ~shared_capacity_bytes:(64 * 1024) ~reg_capacity_elems:512
    ~global_bandwidth_gbs:400. ~shared_bandwidth_gbs:120.
    ~launch_overhead_us:2. ~scalar_flops:1000. ~max_blocks_per_core:8

let virtual_axpy () =
  create ~name:"AXPY-accelerator" ~config:(virtual_cfg "AXPY-accelerator")
    ~intrinsics:[ Intrinsic.axpy_unit () ]

let virtual_gemv () =
  create ~name:"GEMV-accelerator" ~config:(virtual_cfg "GEMV-accelerator")
    ~intrinsics:[ Intrinsic.gemv_unit () ]

let virtual_conv () =
  create ~name:"CONV-accelerator" ~config:(virtual_cfg "CONV-accelerator")
    ~intrinsics:[ Intrinsic.conv_unit () ]

let primary_intrinsic t =
  match t.intrinsics with
  | [] -> invalid_arg (t.name ^ " has no intrinsics")
  | i :: _ -> i

(* Preset lookup shared by the CLI, the plan server and the scripts: one
   name table, so a wire request and a command line resolve the same
   accelerator.  "toy" is the tiny 2x2x2 MMA used throughout the tests:
   V100-shaped hardware with a toy intrinsic, cheap to tune against. *)
let preset_names =
  [ "v100"; "a100"; "avx512"; "mali"; "ascend"; "axpy"; "gemv"; "conv"; "toy" ]

let by_name = function
  | "v100" -> Some (v100 ())
  | "a100" -> Some (a100 ())
  | "avx512" -> Some (avx512_cpu ())
  | "mali" -> Some (mali_g76 ())
  | "ascend" -> Some (ascend_like ())
  | "axpy" -> Some (virtual_axpy ())
  | "gemv" -> Some (virtual_gemv ())
  | "conv" -> Some (virtual_conv ())
  | "toy" ->
      let base = v100 () in
      Some { base with intrinsics = [ Intrinsic.toy_mma_2x2x2 () ] }
  | _ -> None
