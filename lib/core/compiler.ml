open Amos_ir
module Networks = Amos_workloads.Networks

let log_src = Logs.Src.create "amos.compiler" ~doc:"AMOS compilation driver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type target =
  | Spatial of Explore.plan
  | Scalar of float

type plan = {
  op : Operator.t;
  accel : Accelerator.t;
  target : target;
}

(* Intrinsic selection is part of the search: the mapping space is the
   union over every intrinsic the accelerator exposes (e.g. the three WMMA
   shapes of Tensor Core). *)
let mappings ?filter accel op =
  List.concat_map
    (fun intr -> List.map Mapping.make (Mapping_gen.generate_op ?filter op intr))
    accel.Accelerator.intrinsics

(* AMOS also tunes scalar code for the CUDA cores; when a valid spatial
   mapping exists but loses to the scalar roofline (e.g. depthwise conv
   where unused intrinsic dimensions inflate memory traffic 16x), the
   scalar plan is chosen. *)
let tuned_scalar_seconds accel op =
  Spatial_sim.Scalar_backend.estimate_seconds ~efficiency:0.5
    ~memory_efficiency:0.9 accel.Accelerator.config op

let tune ?population ?generations ?measure_top ~rng accel op =
  let scalar = tuned_scalar_seconds accel op in
  Log.debug (fun m ->
      m "tuning %s on %s (scalar roofline %.3f us)" op.Operator.name
        accel.Accelerator.name (1e6 *. scalar));
  match Explore.tune_op ?population ?generations ?measure_top ~rng ~accel op with
  | Some result
    when result.Explore.best.Explore.measured < infinity
         && result.Explore.best.Explore.measured <= scalar ->
      Log.info (fun m ->
          m "%s -> spatial %.3f us after %d evaluations: %s" op.Operator.name
            (1e6 *. result.Explore.best.Explore.measured)
            result.Explore.evaluations
            (Mapping.describe result.Explore.best.Explore.candidate.Explore.mapping));
      { op; accel; target = Spatial result.Explore.best }
  | Some result ->
      Log.info (fun m ->
          m "%s -> scalar %.3f us (spatial best %.3f us)" op.Operator.name
            (1e6 *. scalar)
            (1e6 *. result.Explore.best.Explore.measured));
      { op; accel; target = Scalar scalar }
  | None ->
      Log.info (fun m ->
          m "%s -> scalar %.3f us (no valid mapping)" op.Operator.name
            (1e6 *. scalar));
      { op; accel; target = Scalar scalar }

let seconds plan =
  match plan.target with
  | Spatial p -> p.Explore.measured
  | Scalar s -> s

let gflops plan = Operator.flops plan.op /. seconds plan /. 1e9
let is_mapped plan = match plan.target with Spatial _ -> true | Scalar _ -> false

let describe plan =
  match plan.target with
  | Spatial p ->
      Printf.sprintf "%s: %s  (%.3f ms, %.1f GFLOPS)" plan.op.Operator.name
        (Mapping.describe p.Explore.candidate.Explore.mapping)
        (1e3 *. seconds plan) (gflops plan)
  | Scalar _ ->
      Printf.sprintf "%s: scalar fallback (%.3f ms)" plan.op.Operator.name
        (1e3 *. seconds plan)

let verify ~rng accel mapping schedule =
  let op =
    mapping.Mapping.matching.Matching.view.Mac_view.op
  in
  let inputs = Amos_tensor.Reference.random_inputs rng op in
  let expected = Amos_tensor.Reference.run op ~inputs in
  let kernel = Codegen.lower accel mapping schedule in
  match
    Spatial_sim.Machine.run accel.Accelerator.config kernel ~inputs
      ~out_shape:op.Operator.output.Operator.tensor.Tensor_decl.shape
  with
  | got -> Amos_tensor.Nd.approx_equal ~tol:1e-4 expected got
  | exception Spatial_sim.Machine.Infeasible _ -> false

type layer_report = {
  name : string;
  mult : int;
  mapped : bool;
  layer_seconds : float;
}

type network_report = {
  network_name : string;
  total_ops : int;
  mapped_ops : int;
  network_seconds : float;
  layers : layer_report list;
}

let mappable_count accel (net : Networks.t) =
  List.fold_left
    (fun acc (layer, mult) ->
      match layer with
      | Networks.Tensor_op op
        when List.exists
               (fun intr -> Mapping_gen.generate_op op intr <> [])
               accel.Accelerator.intrinsics ->
          acc + mult
      | Networks.Tensor_op _ | Networks.Elementwise _ -> acc)
    0 net.Networks.layers

let map_network ?population ?generations ~rng accel (net : Networks.t) =
  let layers =
    List.map
      (fun (layer, mult) ->
        match layer with
        | Networks.Tensor_op op ->
            let plan = tune ?population ?generations ~rng accel op in
            {
              name = op.Operator.name;
              mult;
              mapped = is_mapped plan;
              layer_seconds = seconds plan;
            }
        | Networks.Elementwise { name; elems } ->
            {
              name;
              mult;
              mapped = false;
              layer_seconds =
                Spatial_sim.Scalar_backend.estimate_elementwise
                  accel.Accelerator.config ~elems;
            })
      net.Networks.layers
  in
  {
    network_name = net.Networks.name;
    total_ops = Networks.op_count net;
    mapped_ops =
      List.fold_left
        (fun acc l -> if l.mapped then acc + l.mult else acc)
        0 layers;
    network_seconds =
      List.fold_left
        (fun acc l -> acc +. (float_of_int l.mult *. l.layer_seconds))
        0. layers;
    layers;
  }
