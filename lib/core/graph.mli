(** Dataflow graphs of operators: the whole-network substrate with
    fan-out, residual additions, and channel concatenation — enough to
    express the ResNet/ShuffleNet-style blocks of the paper's network
    evaluation as real dataflow (not just operator inventories), compile
    every tensor node through AMOS, and verify the result against the
    reference interpreter.

    Graphs are built with the builder functions; each returns the id of
    the node it creates.  An [Op] node consumes one upstream tensor as
    the operator's first input; remaining inputs are weights supplied at
    execution time. *)

open Amos_ir

type node_id

type t

module Builder : sig
  type graph = t
  type b

  val create : unit -> b
  val input : b -> int list -> node_id
  val op : b -> Operator.t -> node_id -> node_id
  (** Checks that the upstream shape equals the operator's first-input
      shape; raises [Invalid_argument] otherwise. *)

  val add : b -> node_id -> node_id -> node_id
  (** Elementwise residual addition; shapes must match. *)

  val relu : b -> node_id -> node_id

  val concat : b -> axis:int -> node_id -> node_id -> node_id
  (** Concatenation along [axis]; other dims must match. *)

  val reshape : b -> int list -> node_id -> node_id
  (** Row-major reinterpretation; element counts must match. *)

  val permute : b -> int list -> node_id -> node_id
  (** Axis permutation (a data transpose); [perm] lists, for each output
      axis, the input axis it takes. *)

  val finish : b -> output:node_id -> graph
end

val shape_of : t -> node_id -> int list
val output_shape : t -> int list
val input_shape : t -> int list
val tensor_ops : t -> Operator.t list

val random_weights : Amos_tensor.Rng.t -> t -> (node_id * Amos_tensor.Nd.t list) list
val run_reference :
  t ->
  input:Amos_tensor.Nd.t ->
  weights:(node_id * Amos_tensor.Nd.t list) list ->
  Amos_tensor.Nd.t

val run_compiled :
  rng:Amos_tensor.Rng.t ->
  Accelerator.t ->
  t ->
  input:Amos_tensor.Nd.t ->
  weights:(node_id * Amos_tensor.Nd.t list) list ->
  Amos_tensor.Nd.t
(** Every [Op] node with a valid mapping executes through a lowered
    kernel on the simulator; the rest run on the scalar units. *)

val residual_block : ?channels:int -> ?hw:int -> unit -> t
(** x -> 1x1 conv -> relu -> 1x1 conv -> (+x) -> relu: a ResNet-style
    residual block (1x1 so shapes are preserved without padding). *)

val branch_block : ?channels:int -> ?hw:int -> unit -> t
(** Two parallel 1x1 convolution branches concatenated along the channel
    axis (Inception/ShuffleNet-style fan-out + merge). *)

val shufflenet_unit : ?groups:int -> ?channels_per_group:int -> ?hw:int -> unit -> t
(** A full ShuffleNet unit: grouped 1x1 conv -> relu -> channel shuffle
    (permute + reshape) -> 3x3 depthwise (stride 1, spatial size kept by
    using the pre-grown input) -> grouped 1x1 conv -> residual add ->
    relu.  Exercises every node kind plus the two operator classes the
    libraries cannot map (Table 2's ShuffleNet row). *)
