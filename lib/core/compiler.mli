(** The user-facing compilation driver (the "AMOS" entry points).

    Single operators: [mappings] enumerates the valid mapping space,
    [tune] explores mappings x schedules and returns the best measured
    plan (falling back to the scalar units when the operator cannot be
    mapped, as the paper does for ReLU / MaxPooling), [verify] checks a
    lowered plan bit-for-bit against the reference interpreter.

    Whole networks: [map_network] compiles every layer, reports how many
    operators reached the spatial units (the Table 2 quantity) and the
    end-to-end latency (the Fig 7 quantity). *)

open Amos_ir

type target =
  | Spatial of Explore.plan
  | Scalar of float  (** estimated seconds on the scalar units *)

type plan = {
  op : Operator.t;
  accel : Accelerator.t;
  target : target;
}

val mappings : ?filter:bool -> Accelerator.t -> Operator.t -> Mapping.t list
(** The union of the valid mapping spaces of every intrinsic the
    accelerator exposes (e.g. all three WMMA shapes on Tensor Core). *)

val tune :
  ?population:int ->
  ?generations:int ->
  ?measure_top:int ->
  rng:Amos_tensor.Rng.t ->
  Accelerator.t ->
  Operator.t ->
  plan

val seconds : plan -> float
val gflops : plan -> float
val is_mapped : plan -> bool
val describe : plan -> string

val verify :
  rng:Amos_tensor.Rng.t ->
  Accelerator.t ->
  Mapping.t ->
  Schedule.t ->
  bool
(** Functional check: lower, execute on the simulator, compare with the
    reference interpreter on random inputs (tolerance 1e-4). *)

type layer_report = {
  name : string;
  mult : int;
  mapped : bool;
  layer_seconds : float;  (** one instance *)
}

type network_report = {
  network_name : string;
  total_ops : int;
  mapped_ops : int;
  network_seconds : float;  (** end-to-end, multiplicities included *)
  layers : layer_report list;
}

val mappable_count : Accelerator.t -> Amos_workloads.Networks.t -> int
(** Number of operator instances with at least one valid mapping for any
    of the accelerator's intrinsics — the "Our Mapped" column of Table 2
    (mappability, independent of whether the tuner ultimately prefers the
    spatial or the scalar plan). *)

val map_network :
  ?population:int ->
  ?generations:int ->
  rng:Amos_tensor.Rng.t ->
  Accelerator.t ->
  Amos_workloads.Networks.t ->
  network_report
