(** The compiler IR nodes of Sec 6 (Table 4).

    The hardware abstraction is embedded in the compiler IR through two
    new nodes on top of the basic ones: [Compute (Tensor, Expr,
    Array<Expr>)] describes a small loop nest matched to a compute
    intrinsic; [Memory (Tensor, String, BufferLoad)] describes a memory
    intrinsic (scope-qualified load/store).  [lower] produces the node
    sequence a mapping inserts into the AST during code generation. *)

open Amos_ir

(** Basic IR nodes (Table 4, top half). *)
type expr =
  | Var of string
  | Int_const of int
  | Bin of string * expr * expr  (** arithmetic: +,-,*,/ *)
  | Buffer_load of Tensor_decl.t * expr list

type node =
  | Compute of {
      dst : Tensor_decl.t;
      expr : expr;
      iters : expr list;  (** the intrinsic iterations *)
    }
  | Memory of {
      dst : Tensor_decl.t;
      scope : string;  (** "global" / "shared" / "reg" *)
      src : expr;  (** a [Buffer_load] *)
    }

val lower : Mapping.t -> node list
(** The memory nodes (one load per real source operand, one store) and
    the compute node a physical mapping inserts. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_node : Format.formatter -> node -> unit
val pp_nodes : Format.formatter -> node list -> unit
