open Amos_ir
module K = Spatial_sim.Kernel

type dim_parts = {
  extent : int;
  b_pos : int;  (* -1 when the part has extent 1 and is omitted *)
  w_pos : int;
  s_pos : int;
  b_ext : int;
  w_ext : int;
  s_ext : int;
}

(* Per software iteration: how to recover its value. *)
type sw_role =
  | Outer of int  (* index into the dims/parts table *)
  | Mapped of {
      intr_pos : int;
      fused : Mapping.fused_dim;
      tile_dim : int option;  (* dims-table index of the tile loop *)
      radix_stride : int;  (* stride of this iteration inside the fusion *)
    }

let build_parts (sched : Schedule.t) dims =
  let next = ref 0 in
  let alloc ext = if ext <= 1 then -1 else (let p = !next in incr next; p) in
  let parts =
    List.map2
      (fun (d : Schedule.dim) (s : Schedule.split) ->
        let b_pos = alloc s.Schedule.block in
        let w_pos = alloc s.Schedule.subcore in
        let s_pos = alloc s.Schedule.serial in
        {
          extent = d.Schedule.extent;
          b_pos; w_pos; s_pos;
          b_ext = s.Schedule.block;
          w_ext = s.Schedule.subcore;
          s_ext = s.Schedule.serial;
        })
      dims (Array.to_list sched.Schedule.splits)
  in
  let outer_extents = Array.make !next 1 in
  let level_of = Array.make !next 2 in
  List.iter
    (fun p ->
      if p.b_pos >= 0 then begin outer_extents.(p.b_pos) <- p.b_ext; level_of.(p.b_pos) <- 0 end;
      if p.w_pos >= 0 then begin outer_extents.(p.w_pos) <- p.w_ext; level_of.(p.w_pos) <- 1 end;
      if p.s_pos >= 0 then begin outer_extents.(p.s_pos) <- p.s_ext; level_of.(p.s_pos) <- 2 end)
    parts;
  (Array.of_list parts, outer_extents, level_of)

let dim_value parts outer i =
  let p = parts.(i) in
  let get pos = if pos < 0 then 0 else outer.(pos) in
  ((get p.b_pos * p.w_ext) + get p.w_pos) * p.s_ext + get p.s_pos

let radix_stride (fd : Mapping.fused_dim) (it : Iter.t) =
  let rec go = function
    | [] -> raise Not_found
    | (x : Iter.t) :: rest ->
        if Iter.equal x it then
          List.fold_left (fun acc (j : Iter.t) -> acc * j.Iter.extent) 1 rest
        else go rest
  in
  go fd.Mapping.sw_iters

(* How one iteration's cover (consecutive values spanned within a block or
   pipeline step) is obtained from the splits: fixed across schedules, read
   from an outer dim's split, or derived from a tile dim's split.  Resolved
   once per mapping so the per-schedule footprint is pure arithmetic. *)
type fp_cover =
  | Fp_const of int
  | Fp_outer of int  (* dims index *)
  | Fp_tile of { di : int; intr_extent : int; radix_stride : int }

(* One affine index expression of an access: [(abs coeff, iter extent,
   cover source)] per term.  Its span is
   [1 + sum(abs_c * (clamp(cover) - 1))]; an access's footprint is the
   product of its factors ({!Footprint.access_elems} unrolled). *)
type fp_factor = (int * int * fp_cover) array

(* Everything about a (mapping, accelerator) pair that does not depend on
   the schedule: iteration roles, operand slot positions, tile shapes and
   byte sizes, source kinds, footprint structure, memory-efficiency score,
   kernel name.  In a genetic search hundreds of schedules are lowered
   against one mapping; computing this once and reusing it is the
   "incremental re-evaluation when only schedule scalars change" of
   ROADMAP item 3. *)
type prepared = {
  p_mapping : Mapping.t;
  p_op : Operator.t;
  p_intr : Intrinsic.t;
  p_intr_iters : Iter.t array;
  p_dims : Schedule.dim list;
  p_roles : (Iter.t * sw_role) list;
  p_dst_slot_pos : int array;
  p_src_operands : Compute_abs.operand array;
  p_src_slot_pos : int array array;
  p_elem_bytes : int;
  p_acc_bytes : int;
  p_src_tile_extents : int array array;
  p_dst_tile_extents : int array;
  p_out_bytes_per_tile : int;
  p_sources : Mac_view.source array;  (* per intrinsic source, permuted *)
  p_virtual : bool array;
  p_dim_index_of_tile : int option array;  (* per intrinsic position *)
  p_dst_dim_dep : bool array;  (* aligned with p_dims *)
  p_dim_par : bool array;  (* parallelizable flag per dim *)
  p_src_footprints : fp_factor array array array;
      (* per source: the accesses (two for Diff_sq) whose footprints sum *)
  p_reg_load_raw : float;  (* sum of real-source bytes_per_tile *)
  p_max_load_elems : int;  (* largest register tile, min_int when no srcs *)
  p_iter_extents : int array;
  p_flops_per_call : float;
  p_mem_efficiency : float;
  p_name : string;
}

let prepare (accel : Accelerator.t) (m : Mapping.t) =
  ignore accel;
  let matching = m.Mapping.matching in
  let view = matching.Matching.view in
  let op = view.Mac_view.op in
  let intr = matching.Matching.intr in
  let compute = intr.Intrinsic.compute in
  let intr_iters = Array.of_list compute.Compute_abs.iters in
  let dims = Schedule.dims m in
  (* dims-table index per origin *)
  let dim_index_of_outer it =
    let rec go i = function
      | [] -> raise Not_found
      | (d : Schedule.dim) :: rest -> (
          match d.Schedule.origin with
          | `Outer_sw it' when Iter.equal it it' -> i
          | `Outer_sw _ | `Tile _ -> go (i + 1) rest)
    in
    go 0 dims
  in
  let dim_index_of_tile pos =
    let rec go i = function
      | [] -> None
      | (d : Schedule.dim) :: rest -> (
          match d.Schedule.origin with
          | `Tile p when p = pos -> Some i
          | `Tile _ | `Outer_sw _ -> go (i + 1) rest)
    in
    go 0 dims
  in
  (* role of each software iteration *)
  let roles =
    List.map
      (fun (it : Iter.t) ->
        let rec find_mapped pos =
          if pos >= Array.length m.Mapping.fused then None
          else
            let fd = m.Mapping.fused.(pos) in
            if List.exists (Iter.equal it) fd.Mapping.sw_iters then
              Some
                (Mapped
                   {
                     intr_pos = pos;
                     fused = fd;
                     tile_dim = dim_index_of_tile pos;
                     radix_stride = radix_stride fd it;
                   })
            else find_mapped (pos + 1)
        in
        match find_mapped 0 with
        | Some r -> (it, r)
        | None -> (it, Outer (dim_index_of_outer it)))
      op.Operator.iters
  in
  let role_of it =
    let rec go = function
      | [] -> invalid_arg ("Codegen: unknown iter " ^ it.Iter.name)
      | (j, r) :: rest -> if Iter.equal it j then r else go rest
    in
    go roles
  in
  (* slot positions of each intrinsic operand within the iteration list *)
  let slot_positions (o : Compute_abs.operand) =
    Array.of_list (List.map (Compute_abs.iter_pos compute) o.Compute_abs.slots)
  in
  let dst_slot_pos = slot_positions compute.Compute_abs.dst in
  let src_operands = Array.of_list compute.Compute_abs.srcs in
  let src_slot_pos = Array.map slot_positions src_operands in
  let elem_bytes = Tensor_decl.elem_bytes intr.Intrinsic.dtype in
  let acc_bytes = Tensor_decl.elem_bytes intr.Intrinsic.acc_dtype in
  (* tiles are full problem-size shaped (hardware fragments) *)
  let operand_tile_extents (o : Compute_abs.operand) =
    Array.of_list (List.map (fun (it : Iter.t) -> it.Iter.extent) o.Compute_abs.slots)
  in
  let dst_tile_extents = operand_tile_extents compute.Compute_abs.dst in
  (* which view source feeds intrinsic source [mi] *)
  let view_srcs = Array.of_list view.Mac_view.srcs in
  let sources =
    Array.init (Array.length src_operands) (fun mi ->
        view_srcs.(matching.Matching.src_perm.(mi)))
  in
  let virtuals =
    Array.map
      (function
        | Mac_view.Tensor _ -> false
        | Mac_view.Ones _ -> true
        | Mac_view.Diff_sq _ -> false)
      sources
  in
  let n_tiles = Array.length m.Mapping.fused in
  let tile_dim_table = Array.init n_tiles dim_index_of_tile in
  let dst_needed =
    List.concat_map Affine.iters op.Operator.output.Operator.index
  in
  let depends_on_dim needed slots_pos (d : Schedule.dim) =
    match d.Schedule.origin with
    | `Outer_sw it -> List.exists (Iter.equal it) needed
    | `Tile pos ->
        Array.exists (fun p -> p = pos) slots_pos
        || List.exists
             (fun it ->
               match role_of it with
               | Mapped { intr_pos; _ } -> intr_pos = pos
               | Outer _ -> false)
             needed
  in
  let dst_dim_dep =
    List.map (depends_on_dim dst_needed dst_slot_pos) dims
  in
  (* footprint structure: resolve each access-index term's cover source so
     the per-schedule footprint (Sec 5.3's DataIn) is pure arithmetic *)
  let fp_cover_of it =
    match role_of it with
    | Outer di -> Fp_outer di
    | Mapped { intr_pos; tile_dim; radix_stride; _ } -> (
        let ext = intr_iters.(intr_pos).Iter.extent in
        match tile_dim with
        | None -> Fp_const ((ext + radix_stride - 1) / radix_stride)
        | Some di -> Fp_tile { di; intr_extent = ext; radix_stride })
  in
  let fp_access (acc : Operator.access) =
    Array.of_list
      (List.map
         (fun a ->
           Array.of_list
             (List.map
                (fun (it : Iter.t) ->
                  (abs (Affine.coeff a it), it.Iter.extent, fp_cover_of it))
                (Affine.iters a)))
         acc.Operator.index)
  in
  let src_footprints =
    Array.map
      (function
        | Mac_view.Tensor { acc; _ } -> [| fp_access acc |]
        | Mac_view.Diff_sq { a; b; _ } -> [| fp_access a; fp_access b |]
        | Mac_view.Ones _ -> [||])
      sources
  in
  let src_tile_extents = Array.map operand_tile_extents src_operands in
  let reg_load_raw =
    let r = ref 0. in
    for mi = 0 to Array.length src_operands - 1 do
      if not virtuals.(mi) then
        r :=
          !r
          +. float_of_int
               (Array.fold_left ( * ) 1 src_tile_extents.(mi) * elem_bytes)
    done;
    !r
  in
  (* coalescing quality: is the innermost index of each real tensor driven
     by the fastest-varying component of a fused intrinsic dimension? *)
  let innermost_quality (acc : Operator.access) =
    match List.rev acc.Operator.index with
    | [] -> 1.0
    | inner :: _ ->
        let fast it =
          match role_of it with
          | Mapped { fused; _ } -> (
              match List.rev fused.Mapping.sw_iters with
              | last :: _ -> Iter.equal last it
              | [] -> false)
          | Outer _ -> false
        in
        if List.exists (fun it -> Affine.coeff inner it = 1 && fast it)
             (Affine.iters inner)
        then 1.0
        else 0.7
  in
  let mem_efficiency =
    let accs =
      op.Operator.output
      :: List.filter_map
           (fun mi ->
             if virtuals.(mi) then None
             else
               match sources.(mi) with
               | Mac_view.Tensor { acc; _ } -> Some acc
               | Mac_view.Diff_sq { a; _ } -> Some a
               | Mac_view.Ones _ -> None)
           (List.init (Array.length sources) (fun mi -> mi))
    in
    let product = List.fold_left (fun p a -> p *. innermost_quality a) 1. accs in
    product ** (1. /. float_of_int (max 1 (List.length accs)))
  in
  {
    p_mapping = m;
    p_op = op;
    p_intr = intr;
    p_intr_iters = intr_iters;
    p_dims = dims;
    p_roles = roles;
    p_dst_slot_pos = dst_slot_pos;
    p_src_operands = src_operands;
    p_src_slot_pos = src_slot_pos;
    p_elem_bytes = elem_bytes;
    p_acc_bytes = acc_bytes;
    p_src_tile_extents = src_tile_extents;
    p_dst_tile_extents = dst_tile_extents;
    p_out_bytes_per_tile = Array.fold_left ( * ) 1 dst_tile_extents * acc_bytes;
    p_sources = sources;
    p_virtual = virtuals;
    p_dim_index_of_tile = tile_dim_table;
    p_dst_dim_dep = Array.of_list dst_dim_dep;
    p_dim_par =
      Array.of_list
        (List.map (fun (d : Schedule.dim) -> d.Schedule.parallelizable) dims);
    p_src_footprints = src_footprints;
    p_reg_load_raw = reg_load_raw;
    p_max_load_elems =
      Array.fold_left
        (fun acc te -> max acc (Array.fold_left ( * ) 1 te))
        min_int src_tile_extents;
    p_iter_extents =
      Array.map (fun (it : Iter.t) -> it.Iter.extent) intr_iters;
    p_flops_per_call = Intrinsic.flops_per_call intr;
    p_mem_efficiency = mem_efficiency;
    p_name = Printf.sprintf "%s@%s" op.Operator.name intr.Intrinsic.name;
  }

(* ---- timing metadata ----
   Bound inference (Sec 5.3's DataIn/DataOut): within one block (or one
   pipeline step), how many consecutive values does each software
   iteration cover?  Outer iterations cover their sub-core x serial
   local extent; matched iterations cover what the local tiles of their
   fused dimension span, divided by their mixed-radix stride.

   global->shared staging moves raw (footprint) data, exploiting
   window-overlap reuse; register fragments and the fragment store are
   full hardware tiles regardless.  The footprint structure was resolved
   in [prepare]; here each access is [Footprint.access_elems] unrolled
   to arithmetic over the splits. *)
(* [step = false] is block scope (sub-core x serial local extent),
   [step = true] is one pipeline step (sub-core only) *)
let fp_cover_val splits ~step cov =
  match cov with
  | Fp_const c -> c
  | Fp_outer di ->
      let s = splits.(di) in
      if step then s.Schedule.subcore
      else s.Schedule.subcore * s.Schedule.serial
  | Fp_tile { di; intr_extent; radix_stride } ->
      let s = splits.(di) in
      let le =
        if step then s.Schedule.subcore
        else s.Schedule.subcore * s.Schedule.serial
      in
      let g_span = le * intr_extent in
      (g_span + radix_stride - 1) / radix_stride

let fp_factor_span splits ~step (factor : fp_factor) =
  let acc = ref 1 in
  for t = 0 to Array.length factor - 1 do
    let c, ext, cov = factor.(t) in
    acc := !acc + (c * (max 1 (min ext (fp_cover_val splits ~step cov)) - 1))
  done;
  !acc

let fp_source_footprint splits ~step (accesses : fp_factor array array) =
  let sum = ref 0 in
  for a = 0 to Array.length accesses - 1 do
    let factors = accesses.(a) in
    let prod = ref 1 in
    for f = 0 to Array.length factors - 1 do
      prod := !prod * fp_factor_span splits ~step factors.(f)
    done;
    sum := !sum + !prod
  done;
  !sum

let timing_prepared (p : prepared) (sched : Schedule.t) =
  let splits = sched.Schedule.splits in
  let n_srcs = Array.length p.p_src_operands in
  let global_load = ref 0. in
  let shared = ref 0 in
  for mi = 0 to n_srcs - 1 do
    if not p.p_virtual.(mi) then begin
      global_load :=
        !global_load
        +. float_of_int
             (fp_source_footprint splits ~step:false p.p_src_footprints.(mi)
             * p.p_elem_bytes);
      shared :=
        !shared
        + (fp_source_footprint splits ~step:true p.p_src_footprints.(mi)
           * p.p_elem_bytes * sched.Schedule.stage_depth)
    end
  done;
  (* the fragment store writes full tiles (store_matrix_sync) *)
  let dst_tiles_in_block = ref 1 in
  let reduction_serial = ref 1 in
  for i = 0 to Array.length splits - 1 do
    let s = splits.(i) in
    if p.p_dst_dim_dep.(i) then
      dst_tiles_in_block :=
        !dst_tiles_in_block * s.Schedule.subcore * s.Schedule.serial;
    if not p.p_dim_par.(i) then
      reduction_serial := !reduction_serial * s.Schedule.serial
  done;
  let global_load_bytes = !global_load in
  let global_store_bytes =
    float_of_int (p.p_out_bytes_per_tile * !dst_tiles_in_block)
  in
  let shared_bytes = !shared in
  let reg_load_bytes =
    p.p_reg_load_raw
    *. (if sched.Schedule.vectorize then 1.0 else 1.25)
    *. (1.0 +. (0.3 /. float_of_int sched.Schedule.stage_depth))
  in
  let reg_store_bytes =
    2. *. float_of_int p.p_out_bytes_per_tile
    /. float_of_int (max 1 !reduction_serial)
  in
  {
    K.flops_per_call = p.p_flops_per_call;
    shared_bytes_per_block = shared_bytes;
    global_load_bytes_per_block = global_load_bytes;
    global_store_bytes_per_block = global_store_bytes;
    reg_load_bytes_per_call = reg_load_bytes;
    reg_store_bytes_per_call = reg_store_bytes;
    mem_efficiency = p.p_mem_efficiency;
  }

let issue_cycles_prepared (p : prepared) (sched : Schedule.t) =
  p.p_intr.Intrinsic.issue_cycles
  +. (1.0 /. float_of_int sched.Schedule.unroll)

(* Model-only evaluation: the {!Spatial_sim.Kernel.summary} of
   [lower_prepared p sched], computed without building the kernel — no
   [build_parts], no fetch/store closures.  The level products fold the
   split factors directly (extent-1 factors multiply by 1, so skipping
   the position table changes nothing); the timing record comes from the
   same [timing_prepared] the real lowering uses. *)
let summarize_prepared (p : prepared) (sched : Schedule.t) =
  if not (Schedule.validate_dims p.p_dims sched) then
    invalid_arg "Codegen.lower: schedule does not fit mapping";
  let blocks = ref 1 and subcore = ref 1 and serial = ref 1 in
  Array.iter
    (fun (s : Schedule.split) ->
      blocks := !blocks * s.Schedule.block;
      subcore := !subcore * s.Schedule.subcore;
      serial := !serial * s.Schedule.serial)
    sched.Schedule.splits;
  {
    K.s_issue_cycles = issue_cycles_prepared p sched;
    s_blocks = !blocks;
    s_subcore_parallelism = !subcore;
    s_serial_steps = !serial;
    s_max_load_elems = p.p_max_load_elems;
    s_timing = timing_prepared p sched;
  }

let lower_prepared (p : prepared) (sched : Schedule.t) =
  if not (Schedule.validate_dims p.p_dims sched) then
    invalid_arg "Codegen.lower: schedule does not fit mapping";
  let m = p.p_mapping in
  let op = p.p_op in
  let intr = p.p_intr in
  let intr_iters = p.p_intr_iters in
  let dims = p.p_dims in
  let parts, outer_extents, level_of = build_parts sched dims in
  let role_of it =
    let rec go = function
      | [] -> invalid_arg ("Codegen: unknown iter " ^ it.Iter.name)
      | (j, r) :: rest -> if Iter.equal it j then r else go rest
    in
    go p.p_roles
  in
  (* Decode one software iteration value.
     [slot_of_pos] gives the intrinsic-iteration coordinate visible in the
     current context (a tile slot or a full intrinsic point), or 0 when
     the context cannot see that intrinsic dimension. *)
  let sw_value ~outer ~slot_of_pos it =
    match role_of it with
    | Outer di ->
        let v = dim_value parts outer di in
        if v >= parts.(di).extent then None else Some v
    | Mapped { intr_pos; fused; tile_dim; radix_stride } ->
        let tile =
          match tile_dim with None -> 0 | Some di -> dim_value parts outer di
        in
        let i_k = slot_of_pos intr_pos in
        let g = (tile * intr_iters.(intr_pos).Iter.extent) + i_k in
        if g >= fused.Mapping.fused_extent then None
        else Some (g / radix_stride mod it.Iter.extent)
  in
  (* Evaluate an access's index under a decode context; None = padding. *)
  let eval_access ~outer ~slot_of_pos (acc : Operator.access) =
    let exception Pad in
    match
      List.map
        (fun a ->
          Affine.eval
            (fun it ->
              match sw_value ~outer ~slot_of_pos it with
              | Some v -> v
              | None -> raise Pad)
            a)
        acc.Operator.index
    with
    | idx -> Some (Array.of_list idx)
    | exception Pad -> None
  in
  (* a slot context: given the slot coordinate array of operand [o],
     produce slot_of_pos *)
  let slot_ctx positions slot pos =
    let rec go i =
      if i >= Array.length positions then 0
      else if positions.(i) = pos then slot.(i)
      else go (i + 1)
    in
    go 0
  in
  (* full-point context used by the predicate *)
  let point_ctx point pos = point.(pos) in
  let ones_valid ~outer ~slot_of_pos iters =
    List.for_all
      (fun it -> sw_value ~outer ~slot_of_pos it <> None)
      iters
  in
  (* every slot dimension of the operand must decode in range, even the
     dimensions its access does not need (unused dims pad beyond coord 0) *)
  let slots_in_range positions ~outer ~slot_of_pos =
    Array.for_all
      (fun pos ->
        let fd = m.Mapping.fused.(pos) in
        let tile =
          match p.p_dim_index_of_tile.(pos) with
          | None -> 0
          | Some di -> dim_value parts outer di
        in
        let g = (tile * intr_iters.(pos).Iter.extent) + slot_of_pos pos in
        g < max 1 fd.Mapping.fused_extent)
      positions
  in
  let make_load mi =
    let o = p.p_src_operands.(mi) in
    let positions = p.p_src_slot_pos.(mi) in
    let tile_extents = p.p_src_tile_extents.(mi) in
    let source = p.p_sources.(mi) in
    let fetch outer slot =
      let slot_of_pos = slot_ctx positions slot in
      if not (slots_in_range positions ~outer ~slot_of_pos) then K.Zero
      else
        match source with
        | Mac_view.Tensor { input_idx; acc } -> (
            match eval_access ~outer ~slot_of_pos acc with
            | Some idx -> K.Read (input_idx, idx)
            | None -> K.Zero)
        | Mac_view.Ones iters ->
            if ones_valid ~outer ~slot_of_pos iters then K.One else K.Zero
        | Mac_view.Diff_sq { a_idx; a; b_idx; b } -> (
            match
              ( eval_access ~outer ~slot_of_pos a,
                eval_access ~outer ~slot_of_pos b )
            with
            | Some ia, Some ib -> K.Diff_sq ((a_idx, ia), (b_idx, ib))
            | None, _ | _, None -> K.Zero)
    in
    {
      K.operand = o.Compute_abs.name;
      slot_extents = tile_extents;
      bytes_per_tile =
        Array.fold_left ( * ) 1 tile_extents * p.p_elem_bytes;
      fetch;
    }
  in
  let n_srcs = Array.length p.p_src_operands in
  let loads = Array.to_list (Array.init n_srcs make_load) in
  let store_addr outer dslot =
    let slot_of_pos = slot_ctx p.p_dst_slot_pos dslot in
    if not (slots_in_range p.p_dst_slot_pos ~outer ~slot_of_pos) then None
    else
      match eval_access ~outer ~slot_of_pos op.Operator.output with
      | Some idx -> Some idx
      | None -> None
  in
  let store =
    {
      K.out_slot_extents = p.p_dst_tile_extents;
      out_bytes_per_tile = p.p_out_bytes_per_tile;
      addr = store_addr;
    }
  in
  let predicate =
    match op.Operator.preds with
    | [] -> None
    | preds ->
        Some
          (fun outer point ->
            let slot_of_pos = point_ctx point in
            let exception Inactive in
            match
              List.iter
                (fun pr ->
                  let ok =
                    try
                      Predicate.holds
                        (fun it ->
                          match sw_value ~outer ~slot_of_pos it with
                          | Some v -> v
                          | None -> raise Inactive)
                        pr
                    with Inactive -> false
                  in
                  if not ok then raise Inactive)
                preds
            with
            | () -> true
            | exception Inactive -> false)
  in
  let sem =
    {
      K.iter_extents = p.p_iter_extents;
      dst_slot_pos = p.p_dst_slot_pos;
      src_slot_pos = p.p_src_slot_pos;
      issue_cycles = issue_cycles_prepared p sched;
      latency_cycles = intr.Intrinsic.latency_cycles;
    }
  in
  let timing = timing_prepared p sched in
  {
    K.name = p.p_name;
    outer_extents;
    level_of;
    sem;
    loads;
    store;
    predicate;
    timing;
    init = op.Operator.init;
    post_scale = op.Operator.post_scale;
  }

let lower (accel : Accelerator.t) (m : Mapping.t) (sched : Schedule.t) =
  lower_prepared (prepare accel m) sched

let emit_pseudo accel m sched =
  let k = lower accel m sched in
  let matching = m.Mapping.matching in
  let op = matching.Matching.view.Mac_view.op in
  let intr = matching.Matching.intr in
  let buf = Buffer.create 1024 in
  let dims = Schedule.dims m in
  Buffer.add_string buf
    (Printf.sprintf "// %s lowered to %s on %s\n" op.Operator.name
       intr.Intrinsic.name (Accelerator.primary_intrinsic accel).Intrinsic.name);
  Buffer.add_string buf
    (Printf.sprintf "// compute mapping: %s\n" (Mapping.describe m));
  Buffer.add_string buf
    (Printf.sprintf "// schedule: %s\n" (Schedule.describe m sched));
  List.iter
    (fun om ->
      Buffer.add_string buf
        (Printf.sprintf "// %s\n"
           (String.concat "; "
              (String.split_on_char '\n' (Memory_map.to_string om)))))
    (Memory_map.of_mapping m);
  List.iteri
    (fun i (d : Schedule.dim) ->
      let s = sched.Schedule.splits.(i) in
      Buffer.add_string buf
        (Printf.sprintf "%s %s in [0, %d)  // block=%d subcore=%d serial=%d\n"
           (if d.Schedule.parallelizable then "parallel_for" else "for")
           d.Schedule.name d.Schedule.extent s.Schedule.block
           s.Schedule.subcore s.Schedule.serial))
    dims;
  List.iter
    (fun (l : K.load) ->
      Buffer.add_string buf
        (Printf.sprintf "  load_matrix_sync(%s_frag, shared_%s, ...)  // %d B\n"
           l.K.operand l.K.operand l.K.bytes_per_tile))
    k.K.loads;
  Buffer.add_string buf
    (Printf.sprintf "  %s(Dst_frag, %s)\n" intr.Intrinsic.name
       (String.concat ", "
          (List.map (fun (l : K.load) -> l.K.operand ^ "_frag") k.K.loads)));
  Buffer.add_string buf "  store_matrix_sync(global_out, Dst_frag, ...)\n";
  Buffer.contents buf
