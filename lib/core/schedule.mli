(** Optimization schedules (Table 3a): tile / fuse / bind / parallel /
    cache / unroll / vectorize, applied to the outer loops of a physical
    mapping.

    The outer loop space of a mapping consists of its unmatched software
    iterations plus one tile loop per fused intrinsic dimension.  A
    schedule splits every outer dimension into (core, sub-core, serial)
    factors — the bind/parallel decisions — and sets the shared-buffer
    staging depth (cache), unroll factor, and load vectorization.
    Reduction dimensions are never bound to parallel units (their partial
    sums accumulate in the register fragment). *)

open Amos_ir

type dim = {
  name : string;
  extent : int;
  parallelizable : bool;  (** false for reduction dimensions *)
  origin : [ `Outer_sw of Iter.t | `Tile of int (* intrinsic position *) ];
}

val dims : Mapping.t -> dim list
(** The outer dimensions of a mapping, in a canonical order (software
    iterations first, then tile loops by intrinsic position). *)

type split = {
  block : int;  (** bound to cores *)
  subcore : int;  (** bound to sub-cores within a core *)
  serial : int;  (** executed sequentially; block*subcore*serial >= extent *)
}

type t = {
  splits : split array;  (** aligned with [dims] *)
  stage_depth : int;  (** shared-buffer staging (double buffering etc.) *)
  unroll : int;
  vectorize : bool;
}

val default : Mapping.t -> t
(** A sensible GPU-style schedule: parallel dimensions fully bound to
    cores, reduction dimensions serial. *)

val random : Amos_tensor.Rng.t -> Mapping.t -> t
val mutate : Amos_tensor.Rng.t -> Mapping.t -> t -> t
val crossover : Amos_tensor.Rng.t -> t -> t -> t
val validate : Mapping.t -> t -> bool
(** Splits cover extents, reduction dims are serial, factors positive. *)

val validate_dims : dim list -> t -> bool
(** {!validate} against an already-computed {!dims} list, for callers that
    hold the dims of a mapping and validate many schedules against it. *)

val describe : Mapping.t -> t -> string

type space
(** Precomputed search space for one mapping: its {!dims} plus memoized
    split-factor tables, so the genetic loop stops recomputing divisor
    lists per candidate.  Not domain-safe: one space per search. *)

val space : Mapping.t -> space
val space_dims : space -> dim list

val default_in : space -> t
val random_in : space -> Amos_tensor.Rng.t -> t
val mutate_in : space -> Amos_tensor.Rng.t -> t -> t
val validate_in : space -> t -> bool
(** Each [*_in] draws the same RNG stream and returns the same result as
    its [Mapping.t]-taking counterpart on the space's mapping — the memo
    layer is observationally invisible (checked by the throughput suite). *)
