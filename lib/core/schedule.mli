(** Optimization schedules (Table 3a): tile / fuse / bind / parallel /
    cache / unroll / vectorize, applied to the outer loops of a physical
    mapping.

    The outer loop space of a mapping consists of its unmatched software
    iterations plus one tile loop per fused intrinsic dimension.  A
    schedule splits every outer dimension into (core, sub-core, serial)
    factors — the bind/parallel decisions — and sets the shared-buffer
    staging depth (cache), unroll factor, and load vectorization.
    Reduction dimensions are never bound to parallel units (their partial
    sums accumulate in the register fragment). *)

open Amos_ir

type dim = {
  name : string;
  extent : int;
  parallelizable : bool;  (** false for reduction dimensions *)
  origin : [ `Outer_sw of Iter.t | `Tile of int (* intrinsic position *) ];
}

val dims : Mapping.t -> dim list
(** The outer dimensions of a mapping, in a canonical order (software
    iterations first, then tile loops by intrinsic position). *)

type split = {
  block : int;  (** bound to cores *)
  subcore : int;  (** bound to sub-cores within a core *)
  serial : int;  (** executed sequentially; block*subcore*serial >= extent *)
}

type t = {
  splits : split array;  (** aligned with [dims] *)
  stage_depth : int;  (** shared-buffer staging (double buffering etc.) *)
  unroll : int;
  vectorize : bool;
}

val default : Mapping.t -> t
(** A sensible GPU-style schedule: parallel dimensions fully bound to
    cores, reduction dimensions serial. *)

val random : Amos_tensor.Rng.t -> Mapping.t -> t
val mutate : Amos_tensor.Rng.t -> Mapping.t -> t -> t
val crossover : Amos_tensor.Rng.t -> t -> t -> t
val validate : Mapping.t -> t -> bool
(** Splits cover extents, reduction dims are serial, factors positive. *)

val describe : Mapping.t -> t -> string
