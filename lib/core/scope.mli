(** Memory scopes of the hardware memory hierarchy (Def 4.2 prefixes:
    [global], [shared], [reg]). *)

type t =
  | Global
  | Shared
  | Reg

val name : t -> string
val level : t -> int
(** [Reg] = 0, [Shared] = 1, [Global] = 2. *)

val pp : Format.formatter -> t -> unit
