(** Hardware memory abstraction (Def 4.2): per intrinsic, a list of scoped
    transfer statements ({[reg.Src1[j1] = shared.Src1[l1]]}, ...,
    {[global.Dst[k] = reg.Dst[i]]}).  The base addresses and strides are
    supplied later by the memory mapping (Sec 4.3); here we record the
    structure: which operand moves between which scopes. *)

type transfer = {
  operand : string;
  to_scope : Scope.t;
  from_scope : Scope.t;
}

type t = transfer list

val standard : srcs:string list -> dst:string -> t
(** The common pattern of Eq. (2): each source loads [Shared -> Reg], the
    destination stores [Reg -> Global]. *)

val load_scope : t -> string -> Scope.t
(** The scope an operand is loaded from ([Shared] under [standard]);
    raises [Not_found] for unknown operands. *)

val pp : Format.formatter -> t -> unit
