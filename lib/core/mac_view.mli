(** Canonical multiply-accumulate view of an operator.

    MAC-style intrinsics (Tensor Core, VNNI, dot units) have exactly two
    source operands.  Operators with a single accumulated input are
    canonicalised by adding a {e virtual ones operand} over their reduction
    iterations (the standard trick for mapping reductions to matrix units,
    cf. the scan/reduction-on-Tensor-Core line of work the paper cites);
    variance-style [(a-b)^2] reductions fuse the squared difference into a
    single virtual source whose elements are computed during the register
    load.  Max-accumulation cannot be expressed as a MAC and yields
    [None]. *)

open Amos_ir

type source =
  | Tensor of { input_idx : int; acc : Operator.access }
  | Ones of Iter.t list  (** virtual all-ones operand over these iters *)
  | Diff_sq of {
      a_idx : int;
      a : Operator.access;
      b_idx : int;
      b : Operator.access;
    }  (** fused [(a - b)^2] virtual operand *)

type t = {
  op : Operator.t;
  srcs : source list;  (** always two sources *)
}

val of_operator : Operator.t -> t option
val source_uses : source -> Iter.t -> bool
val source_name : source -> string

val access_matrix : t -> src_perm:int array -> Bin_matrix.t
(** Software access matrix [X] with rows ordered [output ::
    srcs.(src_perm.(0)) :: srcs.(src_perm.(1))] so that row [m] aligns with
    the intrinsic's operand [m]. *)

val column : t -> src_perm:int array -> Iter.t -> bool array
(** One column of that matrix. *)

val independent : t -> Iter.t -> bool
(** The feasibility-filter notion: in every source that uses the
    iteration, it appears alone in at least one index dimension.
    Convolution window iterations are not independent. *)
