(** The analytical performance model of Sec 5.3:

    {[ Perf = L_{M-1}
       L_l = (prod S_l) * max(L_{l-1}, R_{l-1}, W_{l-1})   (l > 0)
       L_0 = (prod S_0) * latency_of_intrinsic
       R_l = DataIn_l / in_bw_l      W_l = DataOut_l / out_bw_l ]}

    Level 0 is the intrinsic, level 1 the sub-core (register traffic),
    level 2 the core (shared-buffer staging), level 3 the device.  This is
    deliberately coarser than {!Spatial_sim.Machine.estimate} (no wave
    quantization, occupancy limits, launch overhead, or coalescing
    effects): the tuner screens candidates with this model and measures
    survivors on the simulator, mirroring the paper's flow; the gap
    between the two is what Fig 5 quantifies. *)

type levels = {
  l0 : float;  (** intrinsic cycles *)
  l1 : float;  (** sub-core cycles *)
  l2 : float;  (** core cycles *)
  l3 : float;  (** device cycles *)
}

val predict :
  Spatial_sim.Machine_config.t -> Spatial_sim.Kernel.t -> levels

val predict_seconds :
  Spatial_sim.Machine_config.t -> Spatial_sim.Kernel.t -> float
(** [infinity] when the kernel violates capacity constraints. *)

type ctx
(** Per-config constants (clock, per-cycle bandwidths) hoisted out of the
    per-kernel evaluation.  Predictions through a ctx are bit-identical to
    the plain entry points — the derived floats are computed by the exact
    same expressions, once. *)

val context : Spatial_sim.Machine_config.t -> ctx
val predict_ctx : ctx -> Spatial_sim.Kernel.t -> levels
val predict_seconds_ctx : ctx -> Spatial_sim.Kernel.t -> float

val predict_summary : ctx -> Spatial_sim.Kernel.summary -> levels
(** The model proper: every other entry point is [predict_summary] of
    {!Spatial_sim.Kernel.summarize}.  Feed it
    {!Codegen.summarize_prepared} output to screen a schedule without
    building the kernel at all. *)

val predict_seconds_summary : ctx -> Spatial_sim.Kernel.summary -> float
(** [infinity] when the summary violates capacity constraints. *)
