type t =
  | Global
  | Shared
  | Reg

let name = function Global -> "global" | Shared -> "shared" | Reg -> "reg"
let level = function Reg -> 0 | Shared -> 1 | Global -> 2
let pp ppf t = Format.pp_print_string ppf (name t)
