module Rng = Amos_tensor.Rng

type candidate = {
  mapping : Mapping.t;
  schedule : Schedule.t;
}

type plan = {
  candidate : candidate;
  predicted : float;
  measured : float;
}

type result = {
  best : plan;
  evaluations : int;
  history : (float * float) list;
  failures : (string * string) list;
}

(* A calibrated screen model (see [Amos_learn]): a correction applied to
   every analytic prediction during screening and ranking, plus optional
   pruning ratios that let a trusted model spend strictly fewer simulator
   measurements.  The hook lives here (not in the learn library) so the
   core tuner stays free of a dependency on the calibration layer; the
   identity hook — correction that returns its input bit-for-bit, both
   cuts [None] — reproduces the default path exactly. *)
type screen_model = {
  sm_correct : Spatial_sim.Kernel.summary -> float -> float;
      (* [sm_correct summary predicted] -> corrected predicted seconds *)
  sm_measure_cut : float option;
      (* per mapping, measure the best-ranked candidate plus one
         representative per corrected-prediction band of this relative
         width (>= 1.), never beyond the ratio of the best; candidates
         inside an already-measured band are model-indistinguishable
         from its representative *)
  sm_survivor_cut : float option;
      (* drop full-search mappings whose corrected screen score exceeds
         this ratio of the best survivor's (>= 1.; seeded mappings and
         the best survivor always stay) *)
}

(* One measured data point, reported through [?observe]: the kernel-free
   summary the model screened with, the {e uncorrected} analytic
   prediction (calibration always fits against the raw model, never
   against its own output), and the simulator measurement.  The callback
   is a side channel: it sees every simulator measurement in exploration
   order and cannot perturb the search. *)
type observation = {
  ob_summary : Spatial_sim.Kernel.summary;
  ob_predicted : float;
  ob_measured : float;
}

(* Cooperative abort: an [?abort] poll returning [true] raises this at
   the next generation boundary of the genetic search.  The exception
   deliberately escapes [tune]'s per-mapping failure containment — an
   aborted exploration has no result, partial or otherwise. *)
exception Aborted

(* One per-generation snapshot of an in-flight exploration, reported
   through [?progress].  Latencies use [infinity] for "nothing yet":
   the wire layer renders unknowns as absent fields.  Like [?observe],
   the callback is a side channel — it cannot perturb RNG streams,
   rankings or results. *)
type progress = {
  pr_generation : int;
  pr_best_predicted : float;
  pr_best_measured : float;
  pr_evaluations : int;
}

let predict accel c =
  let k = Codegen.lower accel c.mapping c.schedule in
  Perf_model.predict_seconds accel.Accelerator.config k

let measure accel c =
  let k = Codegen.lower accel c.mapping c.schedule in
  Spatial_sim.Machine.estimate_seconds accel.Accelerator.config k

(* A stable per-mapping seed: the schedule search for a given mapping
   explores the same schedule sequence no matter which compiler invokes
   it or what other mappings surround it.  Exploring a superset of
   mappings therefore can only help -- the property the paper's
   comparison against fixed-mapping baselines rests on.  It is also what
   makes the search embarrassingly parallel: every per-mapping work unit
   derives its RNG stream from the mapping itself, so any partition of
   the mappings over workers produces identical results. *)
let mapping_seed (m : Mapping.t) =
  (* the description hash is cached on the mapping itself: a genetic
     search calls this once but parallel front-ends re-derive shard
     streams from it repeatedly, and [Mapping.describe] rebuilds the
     description string on every call.  [Hashtbl.hash] is non-negative,
     so -1 is a safe "not yet computed" sentinel; racing domains can
     only write the same deterministic value. *)
  if m.Mapping.seed_memo >= 0 then m.Mapping.seed_memo
  else begin
    let h =
      Hashtbl.hash
        ( Mapping.describe m,
          m.Mapping.matching.Matching.intr.Intrinsic.name,
          0x5eed )
    in
    m.Mapping.seed_memo <- h;
    h
  end

(* Structural identity of a mapping: iteration ids are globally unique, so
   two mappings built at different times can only be compared through
   their description plus intrinsic — the same identity [mapping_seed]
   hashes, kept exact here. *)
let mapping_key (m : Mapping.t) =
  (Mapping.describe m, m.Mapping.matching.Matching.intr.Intrinsic.name)

(* Fold an [initial_population] of seed plans into a mapping space:
   returns the extended mapping list (seed mappings join the space when
   not already present), the per-mapping seed schedules, and the is-seeded
   predicate.  Shared by [tune] and [Amos_service.Par_tune] so both
   front-ends treat seeds identically. *)
let merge_seed_population ~mappings initial_population =
  let seed_tbl = Hashtbl.create 8 in
  let seed_mappings = ref [] in
  List.iter
    (fun c ->
      let k = mapping_key c.mapping in
      if not (Hashtbl.mem seed_tbl k) then
        seed_mappings := c.mapping :: !seed_mappings;
      Hashtbl.replace seed_tbl k
        (c.schedule
        :: (match Hashtbl.find_opt seed_tbl k with Some l -> l | None -> [])))
    initial_population;
  let known = List.map mapping_key mappings in
  let extra =
    List.filter
      (fun m -> not (List.mem (mapping_key m) known))
      (List.rev !seed_mappings)
  in
  let seeds_for m =
    match Hashtbl.find_opt seed_tbl (mapping_key m) with
    | Some l -> List.rev l
    | None -> []
  in
  let is_seeded m = Hashtbl.mem seed_tbl (mapping_key m) in
  (mappings @ extra, seeds_for, is_seeded)

(* The per-mapping evaluation engine.  With [memo] on it holds the
   allocation-lean fast path of ROADMAP item 3: the schedule-independent
   half of lowering is prepared once ({!Codegen.prepare}), the perf-model
   config constants are hoisted once ({!Perf_model.context}), schedule
   generation runs through a precomputed {!Schedule.space}, and predicted
   seconds are memoized per schedule — converged genetic populations
   re-propose the same schedules constantly.  With [memo] off every call
   recomputes from scratch (the pre-change code path).  Both produce
   bit-identical floats: the cached value is the recomputed value, the
   [*_in] schedule functions draw the same RNG stream, and evaluation
   counts are closed-form — the throughput suite checks full-tune
   equivalence across seeds and accelerators. *)
type engine = {
  e_default : unit -> Schedule.t;
  e_random : Rng.t -> Schedule.t;
  e_mutate : Rng.t -> Schedule.t -> Schedule.t;
  e_validate : Schedule.t -> bool;
  e_predict : Schedule.t -> float;
      (* corrected by the screen model when one is active *)
  e_measure : Schedule.t -> float;
  e_summary : Schedule.t -> Spatial_sim.Kernel.summary;
  e_raw_predict : Spatial_sim.Kernel.summary -> float;
      (* the uncorrected analytic prediction, for [?observe] records *)
}

let engine ~memo ?model ~accel mapping =
  (* with no model the correction is the identity function and the code
     path below computes exactly what it did before the hook existed *)
  let correct =
    match model with None -> fun _ p -> p | Some m -> m.sm_correct
  in
  if memo then
    let space = Schedule.space mapping in
    let prepared = Codegen.prepare accel mapping in
    let ctx = Perf_model.context accel.Accelerator.config in
    let cache : (Schedule.t, float) Hashtbl.t = Hashtbl.create 64 in
    {
      e_default = (fun () -> Schedule.default_in space);
      e_random = (fun rng -> Schedule.random_in space rng);
      e_mutate = (fun rng s -> Schedule.mutate_in space rng s);
      e_validate = Schedule.validate_in space;
      e_predict =
        (fun s ->
          match Hashtbl.find_opt cache s with
          | Some v -> v
          | None ->
              let summary = Codegen.summarize_prepared prepared s in
              let v =
                correct summary (Perf_model.predict_seconds_summary ctx summary)
              in
              Hashtbl.add cache s v;
              v);
      e_measure =
        (fun s ->
          Spatial_sim.Machine.estimate_seconds accel.Accelerator.config
            (Codegen.lower_prepared prepared s));
      e_summary = Codegen.summarize_prepared prepared;
      e_raw_predict = Perf_model.predict_seconds_summary ctx;
    }
  else
    {
      e_default = (fun () -> Schedule.default mapping);
      e_random = (fun rng -> Schedule.random rng mapping);
      e_mutate = (fun rng s -> Schedule.mutate rng mapping s);
      e_validate = (fun s -> Schedule.validate mapping s);
      e_predict =
        (fun s ->
          match model with
          | None -> predict accel { mapping; schedule = s }
          | Some m ->
              let k = Codegen.lower accel mapping s in
              m.sm_correct
                (Spatial_sim.Kernel.summarize k)
                (Perf_model.predict_seconds accel.Accelerator.config k));
      e_measure = (fun s -> measure accel { mapping; schedule = s });
      e_summary =
        (fun s ->
          Spatial_sim.Kernel.summarize (Codegen.lower accel mapping s));
      e_raw_predict =
        (fun summary ->
          Perf_model.predict_seconds_summary
            (Perf_model.context accel.Accelerator.config)
            summary);
    }

let schedule_search ?tick ?abort ?(seeds = []) ~population ~generations ~rng
    ~eng () =
  let score sched = (sched, eng.e_predict sched) in
  (* seed schedules join the initial genetic population alongside the
     default and the random draws: they compete, they never replace *)
  let initial =
    (score (eng.e_default ()) :: List.map score seeds)
    @ List.init population (fun _ -> score (eng.e_random rng))
  in
  let sorted l = List.sort (fun (_, a) (_, b) -> Float.compare a b) l in
  let aborted () = match abort with None -> false | Some f -> f () in
  let rec go gen pop =
    if gen = 0 then sorted pop
    else begin
      (* the abort flag is polled exactly here — the generation boundary
         of the tentpole's "last waiter detached" semantics *)
      if aborted () then raise Aborted;
      let ranked = sorted pop in
      (match (tick, ranked) with
      | Some f, (_, best) :: _ -> f best
      | _ -> ());
      let survivors = List.filteri (fun i _ -> i < max 2 (population / 2)) ranked in
      let parents = Array.of_list (List.map fst survivors) in
      let children =
        List.init population (fun _ ->
            let a = parents.(Rng.int rng (Array.length parents)) in
            let sched =
              if Rng.bool rng then
                Schedule.crossover rng a
                  parents.(Rng.int rng (Array.length parents))
              else eng.e_mutate rng a
            in
            score sched)
      in
      go (gen - 1) (survivors @ children)
    end
  in
  go generations initial

(* phase 1 unit: screen one mapping with its default schedule and a few
   random ones.  Returns the best predicted time and the number of model
   evaluations spent; deterministic per mapping (see [mapping_seed]). *)
let screen_mapping ?(memo = true) ?model ~accel mapping =
  let eng = engine ~memo ?model ~accel mapping in
  let rng = Rng.create (mapping_seed mapping) in
  let quick = eng.e_default () :: List.init 6 (fun _ -> eng.e_random rng) in
  let best =
    List.fold_left
      (fun acc sched -> Float.min acc (eng.e_predict sched))
      infinity quick
  in
  (best, List.length quick)

let select_survivors ?(must_keep = fun _ -> false) ?cut screened =
  let by_screen =
    List.filteri
      (fun i _ -> i < 12)
      (List.sort (fun (_, a) (_, b) -> Float.compare a b) screened)
  in
  (* high-utilization mappings (im2col-style maximal fusions) always get a
     full search even when the quick screen is unlucky about them *)
  let by_utilization =
    let key (m : Mapping.t) =
      (-.m.Mapping.utilization, List.length m.Mapping.outer_sw)
    in
    List.filteri
      (fun i _ -> i < 4)
      (List.sort
         (fun ((a : Mapping.t), _) (b, _) -> compare (key a) (key b))
         screened)
  in
  let dedup_append acc extra =
    List.fold_left
      (fun acc (m, p) ->
        if List.exists (fun (m', _) -> m' == m) acc then acc
        else acc @ [ (m, p) ])
      acc extra
  in
  (* seeded (migrated) mappings always earn a full search: they compete
     with the screen winners instead of replacing them *)
  let survivors =
    dedup_append
      (dedup_append by_screen by_utilization)
      (List.filter (fun (m, _) -> must_keep m) screened)
  in
  (* a calibrated screen earns the right to prune: mappings whose
     corrected score trails the best survivor by more than [cut] never
     reach the genetic search.  The best survivor always stays (it is
     within any cut >= 1 of itself) and seeded mappings are exempt, so
     the search result can still never be worse than its seeds. *)
  match cut with
  | None -> survivors
  | Some c ->
      let best =
        List.fold_left (fun acc (_, p) -> Float.min acc p) infinity survivors
      in
      List.filter (fun (m, p) -> p <= c *. best || must_keep m) survivors

(* The best-screened survivor escapes the measure band: the winning plan
   most often lives in the top-ranked mapping, and a screen that spares
   the simulator right there risks trading the best plan away for a
   handful of measurements.  Ties with the best score all stay
   unbanded; the identity model has no band, so it passes through
   untouched. *)
let unband ?model ~best score =
  match model with
  | Some ({ sm_measure_cut = Some _; _ } as m) when score <= best ->
      Some { m with sm_measure_cut = None }
  | _ -> model

(* phase 2 unit: full genetic schedule search for one mapping, measuring
   the [measure_top] best model-ranked schedules on the simulator.
   Deterministic per mapping, like [screen_mapping].  [salt] selects an
   independent RNG stream over the same mapping: shard [i] of a
   population split across workers passes [~salt:i], so the shards
   explore disjoint schedule sequences yet each remains reproducible. *)
let search_mapping ?(salt = 0) ?(seeds = []) ?(memo = true) ?model ?observe
    ?tick ?abort ~population ~generations ~measure_top ~accel mapping =
  let eng = engine ~memo ?model ~accel mapping in
  let rng =
    Rng.create
      (if salt = 0 then mapping_seed mapping
       else Hashtbl.hash (mapping_seed mapping, salt))
  in
  let seeds = List.filter eng.e_validate seeds in
  let ranked =
    schedule_search ?tick ?abort ~seeds ~population ~generations ~rng ~eng ()
  in
  let top_all = List.filteri (fun i _ -> i < measure_top) ranked in
  (* a calibrated model prunes the measured set two ways.  Runners-up
     whose corrected prediction trails the best by more than the cut are
     not worth a simulator run.  And a converged population re-proposes
     near-identical schedules: a runner-up whose corrected prediction
     sits within the cut band of an already-kept candidate is
     model-indistinguishable from it, so the kept one serves as the
     band's measurement representative.  [ranked] is sorted, so the head
     is the best and always measured; with no model (or no cut) the
     measured set is exactly the [measure_top] prefix, as before. *)
  let banded, dropped =
    match model with
    | Some { sm_measure_cut = Some cut; _ } -> (
        match top_all with
        | [] -> ([], [])
        | (_, best) :: _ as all ->
            let kept = ref [] and rest = ref [] in
            let last = ref neg_infinity in
            List.iter
              (fun (s, p) ->
                if !kept = [] || (p <= cut *. best && p > cut *. !last) then begin
                  kept := (s, p) :: !kept;
                  last := p
                end
                else rest := (s, p) :: !rest)
              all;
            (List.rev !kept, List.rev !rest))
    | Some { sm_measure_cut = None; _ } | None -> (top_all, [])
  in
  let measure_plan (schedule, predicted) =
    let c = { mapping; schedule } in
    let measured = eng.e_measure schedule in
    (match observe with
    | None -> ()
    | Some f ->
        (* side channel: raw analytic prediction, never the
           model-corrected one — calibration fits the gap between the
           analytic model and the simulator *)
        let summary = eng.e_summary schedule in
        f
          {
            ob_summary = summary;
            ob_predicted = eng.e_raw_predict summary;
            ob_measured = measured;
          });
    { candidate = c; predicted; measured }
  in
  let banded_plans = List.map measure_plan banded in
  (* escalation: a measurement that lands more than three quarters of
     the band away from its own prediction (in log space: [cut ** 0.75],
     about 1.5 sigma of the fitted residual) proves the model is
     misranking this mapping — schedules it called indistinguishable
     differ by more than its claimed noise.  The model then forfeits its
     pruning privilege one candidate at a time: each dropped runner-up
     is measured in rank order for as long as the latest measurement is
     itself surprising, so a locally-bad fit costs a few extra
     simulator runs instead of the best plan, and a single borderline
     wobble costs exactly one. *)
  let escalated_plans =
    match model with
    | Some { sm_measure_cut = Some cut; _ } when dropped <> [] ->
        let thr = Float.pow cut 0.75 in
        let surprising p =
          p.measured > thr *. p.predicted || p.predicted > thr *. p.measured
        in
        let rec widen acc trigger = function
          | [] -> List.rev acc
          | sp :: rest ->
              if not trigger then List.rev acc
              else
                let pl = measure_plan sp in
                widen (pl :: acc) (surprising pl) rest
        in
        widen [] (List.exists surprising banded_plans) dropped
    | _ -> []
  in
  (* seed schedules are always measured, even when the model ranks them
     out of the top: the search result can then never be worse than the
     seeds it was given *)
  let already =
    List.map (fun (s, _) -> s) banded
    @ List.map (fun p -> p.candidate.schedule) escalated_plans
  in
  let seed_extras =
    List.filter_map
      (fun s ->
        if List.mem s already then None else Some (s, eng.e_predict s))
      seeds
  in
  let plans = banded_plans @ escalated_plans @ List.map measure_plan seed_extras in
  (plans, population * (generations + 1) + List.length seeds)

let assemble ?(failures = []) plans ~evaluations =
  let best =
    match plans with
    | [] -> (
        match failures with
        | [] -> invalid_arg "Explore.tune: no feasible plan"
        | fs ->
            failwith
              (Printf.sprintf "Explore.tune: every mapping failed: %s"
                 (String.concat "; "
                    (List.map (fun (m, e) -> m ^ ": " ^ e) fs))))
    | p :: rest ->
        List.fold_left
          (fun acc pl -> if pl.measured < acc.measured then pl else acc)
          p rest
  in
  {
    best;
    evaluations;
    history = List.map (fun p -> (p.predicted, p.measured)) plans;
    failures;
  }

(* Two-phase exploration mirroring the paper's flow: the analytical model
   first screens the mapping space cheaply, then each surviving mapping
   gets a full schedule search (the same budget a template compiler would
   spend on its single hand-written mapping), and the best model-ranked
   plans are measured on the simulator. *)
let tune ?(population = 16) ?(generations = 8) ?(measure_top = 3)
    ?(initial_population = []) ?(memo = true) ?model ?observe ?progress ?abort
    ~rng ~accel ~mappings () =
  if mappings = [] && initial_population = [] then
    invalid_arg "Explore.tune: no mappings";
  (* historical draw, kept so callers sharing an rng see the same stream *)
  let _base_seed = Rng.int rng 1_000_000_000 in
  let mappings, seeds_for, is_seeded =
    merge_seed_population ~mappings initial_population
  in
  let evals = ref 0 in
  let failures = ref [] in
  let record mapping e =
    failures := (Mapping.describe mapping, Printexc.to_string e) :: !failures
  in
  (* progress aggregation across the whole exploration: generation count,
     best model score and best measurement so far, plus a live evaluation
     estimate ([population] per generation, folded into the exact
     per-mapping total once that mapping's search returns) *)
  let gens = ref 0 in
  let best_pred = ref infinity in
  let best_meas = ref infinity in
  let live_evals = ref 0 in
  let fire () =
    match progress with
    | None -> ()
    | Some f ->
        f
          {
            pr_generation = !gens;
            pr_best_predicted = !best_pred;
            pr_best_measured = !best_meas;
            pr_evaluations = !evals + !live_evals;
          }
  in
  let tick =
    match progress with
    | None -> None
    | Some _ ->
        Some
          (fun best ->
            incr gens;
            live_evals := !live_evals + population;
            if best < !best_pred then best_pred := best;
            fire ())
  in
  let observe =
    match progress with
    | None -> observe
    | Some _ ->
        Some
          (fun ob ->
            if ob.ob_measured < !best_meas then best_meas := ob.ob_measured;
            match observe with None -> () | Some f -> f ob)
  in
  (* a raising per-mapping unit loses that mapping, not the search: the
     siblings' results survive and the failure is reported by name *)
  let screened =
    List.filter_map
      (fun mapping ->
        match screen_mapping ~memo ?model ~accel mapping with
        | best, n ->
            evals := !evals + n;
            Some (mapping, best)
        | exception e ->
            record mapping e;
            None)
      mappings
  in
  let cut = Option.bind model (fun m -> m.sm_survivor_cut) in
  let survivors = select_survivors ~must_keep:is_seeded ?cut screened in
  let best_score =
    List.fold_left (fun acc (_, s) -> Float.min acc s) infinity survivors
  in
  let plans =
    List.concat_map
      (fun (mapping, score) ->
        match
          search_mapping ~seeds:(seeds_for mapping) ~memo
            ?model:(unband ?model ~best:best_score score)
            ?observe ?tick ?abort ~population ~generations ~measure_top ~accel
            mapping
        with
        | plans, n ->
            evals := !evals + n;
            live_evals := 0;
            plans
        (* an abort is not a per-mapping failure — the whole exploration
           is being torn down, so nothing may be swallowed *)
        | exception (Aborted as e) -> raise e
        | exception e ->
            record mapping e;
            [])
      survivors
  in
  assemble ~failures:(List.rev !failures) plans ~evaluations:!evals

let tune_op ?population ?generations ?measure_top ?filter ?memo ?model
    ?observe ~rng ~accel op =
  let mappings =
    List.concat_map
      (fun intr ->
        List.map Mapping.make (Mapping_gen.generate_op ?filter ?memo op intr))
      accel.Accelerator.intrinsics
  in
  match mappings with
  | [] -> None
  | _ ->
      Some
        (tune ?population ?generations ?measure_top ?memo ?model ?observe ~rng
           ~accel ~mappings ())

let sample ~n ~rng ~accel ~mappings =
  if mappings = [] then invalid_arg "Explore.sample: no mappings";
  let mappings = Array.of_list mappings in
  List.init n (fun _ ->
      let mapping = mappings.(Rng.int rng (Array.length mappings)) in
      let c = { mapping; schedule = Schedule.random rng mapping } in
      (predict accel c, measure accel c))

let trajectory ~flops history =
  let _, acc =
    List.fold_left
      (fun (best, acc) (_, measured) ->
        let best = Float.min best measured in
        let gflops = if best = infinity then 0. else flops /. best /. 1e9 in
        (best, (List.length acc + 1, gflops) :: acc))
      (infinity, []) history
  in
  List.rev acc

let pairwise_accuracy samples =
  let arr = Array.of_list samples in
  let n = Array.length arr in
  if n < 2 then 1.0
  else begin
    let agree = ref 0 and total = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let pi, mi = arr.(i) and pj, mj = arr.(j) in
        if mi <> mj then begin
          incr total;
          if (pi < pj) = (mi < mj) then incr agree
        end
      done
    done;
    if !total = 0 then 1.0 else float_of_int !agree /. float_of_int !total
  end

let topk_recall ~top_rate samples =
  let arr = Array.of_list samples in
  let n = Array.length arr in
  if n = 0 then 1.0
  else begin
    let k = max 1 (int_of_float (ceil (top_rate *. float_of_int n))) in
    let by_measured =
      List.sort (fun (_, a) (_, b) -> Float.compare a b) samples
    in
    let by_predicted =
      List.sort (fun (a, _) (b, _) -> Float.compare a b) samples
    in
    let take l = List.filteri (fun i _ -> i < k) l in
    let true_top = take by_measured and model_top = take by_predicted in
    let hits =
      List.length (List.filter (fun x -> List.memq x model_top) true_top)
    in
    float_of_int hits /. float_of_int k
  end
