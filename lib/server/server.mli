(** The plan-serving daemon ([amosd]).

    One process owns the plan cache and serves tuning over a
    Unix-domain socket so that N concurrent compiler clients share one
    tuner instead of racing N: requests arrive as {!Protocol} frames on
    per-connection systhreads, tuning work is dispatched onto a bounded
    {!Amos_service.Par_tune.Pool} of worker domains, and results flow
    back through three layers —

    - a bounded in-memory {e hot cache} of recently served plans (no
      disk, no validation cost on a repeat hit);
    - the shared persistent {!Amos_service.Plan_cache} (mutex-guarded:
      a cache handle is owned by one domain at a time);
    - {e single-flight} tuning: concurrent requests for the same
      fingerprint share one exploration ({!Single_flight}), so a herd
      of identical cold requests costs one tune.

    Admission control: when the pool queue is full, new tuning work is
    refused with a typed [Busy] response carrying a retry hint — the
    daemon never queues unboundedly and never hangs a client.

    Shutdown (the [Shutdown] request, or {!stop}) is graceful: the
    daemon stops admitting tuning work, drains the pool (every
    in-flight exploration completes and its waiters get real answers),
    acknowledges, and only then releases the socket.

    [Compile] requests run on the connection thread with their own
    cache handle over the same directory (handles observe each other
    through the journal), so a long network compile never blocks the
    tuning pool. *)

type config = {
  socket_path : string;
  cache_dir : string option;
      (** [None] = memory-only (plans survive only as long as the
          daemon) *)
  workers : int;  (** tuning pool domains *)
  queue_capacity : int;  (** pending tunes admitted before [Busy] *)
  jobs : int;  (** parallel jobs inside one tuning task *)
  hot_capacity : int;  (** hot-cache entries (FIFO eviction) *)
}

val default_config : socket_path:string -> config
(** 2 workers, queue capacity 8, 1 job per tune, 128 hot entries,
    memory-only cache. *)

type tune_outcome = {
  value : Amos_service.Plan_cache.value;
  evaluations : int;
}

type tuner =
  jobs:int ->
  accel:Amos.Accelerator.t ->
  op:Amos_ir.Operator.t ->
  budget:Amos_service.Fingerprint.budget ->
  seeds:Amos.Explore.candidate list ->
  tune_outcome
(** The exploration a pool task runs.  Injectable so tests can observe
    scheduling behaviour (count invocations, block on a latch) without
    paying for real tuning; the default races
    [Amos_service.Par_tune.tune] against the scalar roofline exactly
    like [Batch_compile]. *)

type t

val create : ?tuner:tuner -> config -> t
(** Bind the socket and start the worker pool.  Raises [Unix.Unix_error]
    when the socket path is unusable (a stale socket file is silently
    replaced). *)

val serve : t -> unit
(** Run the accept loop until shutdown; returns after the socket is
    released and every connection thread has finished.  Run it on a
    dedicated thread for in-process use (tests, bench). *)

val stop : t -> unit
(** Programmatic graceful shutdown: drain and stop.  Idempotent; safe
    from any thread. *)

val stats : t -> Protocol.server_stats
(** Snapshot, same data a [Stats] request returns. *)
