(** The plan-serving daemon ([amosd]).

    One process owns the plan cache and serves tuning over a
    Unix-domain socket so that N concurrent compiler clients share one
    tuner instead of racing N: requests arrive as {!Protocol} frames on
    per-connection systhreads, tuning work is dispatched onto a bounded
    {!Amos_service.Par_tune.Pool} of worker domains, and results flow
    back through three layers —

    - a bounded in-memory {e hot cache} of recently served plans (no
      disk, no validation cost on a repeat hit), scored by the cache
      economy ({!Hot_cache}): eviction removes the plan whose loss
      would cost the least tuning time per byte;
    - the shared persistent {!Amos_service.Plan_cache} (mutex-guarded:
      a cache handle is owned by one domain at a time);
    - {e single-flight} tuning: concurrent requests for the same
      fingerprint share one exploration ({!Single_flight}), so a herd
      of identical cold requests costs one tune.

    Admission control ({!Admission}): tuning work queues under
    per-client deficit-round-robin backlogs (peers share one weighted
    key, each local connection gets its own), so one flooding client
    delays itself, not everyone.  When the backlog is at capacity the
    request is refused with a typed [Busy] carrying a retry hint; when
    its [deadline_ms] is below the projected queue wait it is refused
    with a typed [Deadline_hint] {e before} being enqueued.  The daemon
    never queues unboundedly and never hangs a client.

    Streaming: a request whose envelope sets [accept_stream] receives
    interleaved [Progress_r] frames (one per exploration generation)
    before the final reply; clients that never opt in see byte-for-byte
    the old exchange.  A [Cancel] naming the request id detaches that
    one waiter (its stream ends with [Cancelled_r]); the shared flight
    keeps running for co-waiters, and only when the {e last} waiter
    detaches does the exploration abort at its next generation
    boundary.

    Shutdown (the [Shutdown] request, or {!stop}) is graceful: the
    daemon stops admitting tuning work, drains the admission queue and
    the pool (every admitted exploration completes and its waiters get
    real answers), acknowledges, and only then releases the socket.

    [Compile] requests run on the connection thread with their own
    cache handle over the same directory (handles observe each other
    through the journal), so a long network compile never blocks the
    tuning pool.

    When the pool is idle, the accept loop spends spare slots
    re-tuning {e quarantined} fingerprints (corrupt entries fsck set
    aside) whose specification a client request has taught it — see
    {!drain_quarantined_once}. *)

type config = {
  socket_path : string option;
      (** Unix-domain socket: the local trusted path, no handshake *)
  tcp : (string * int) option;
      (** TCP listener as [(bind host, port)]; port 0 binds an
          ephemeral port (see {!tcp_port}).  Every TCP connection must
          open with a {!Protocol.hello} handshake. *)
  auth_token : string option;
      (** shared fleet token TCP hellos must present ([None] accepts
          only an empty token, the client default); compared in
          constant time *)
  handshake_timeout_s : float;
      (** receive deadline for the hello frame, so an unauthenticated
          connection cannot hold an accept slot open *)
  cache_dir : string option;
      (** [None] = memory-only (plans survive only as long as the
          daemon) *)
  workers : int;  (** tuning pool domains *)
  queue_capacity : int;  (** pending tunes admitted before [Busy] *)
  jobs : int;  (** parallel jobs inside one tuning task *)
  hot_capacity : int;  (** hot-cache entries (scored eviction) *)
  hot_max_bytes : int option;  (** hot-cache byte budget *)
  max_bytes : int option;  (** persistent-cache byte budget *)
  max_tuning_seconds : float option;
      (** persistent-cache tuning-seconds budget *)
  io_timeout_s : float;
      (** per-connection [SO_SNDTIMEO]: how long a reply may block on a
          client that stopped draining before the connection is dropped *)
  net : Net_io.t;
      (** mediates every byte the daemon reads or writes on accepted
          connections, so network faults are injectable
          ({!Net_io.of_env} wires the [AMOS_NET_*] environment in) *)
}

val default_config : socket_path:string -> config
(** Unix socket only (no TCP, no token, 5 s handshake deadline),
    2 workers, queue capacity 8, 1 job per tune, 128 hot entries,
    memory-only cache, unlimited byte / tuning-seconds budgets, 30 s
    send timeout, pass-through {!Net_io.default}. *)

type route = [ `Local | `Reply of Protocol.response | `Fallback of string ]
(** What the fleet router decided for a locally-missed request:
    [`Local] — this daemon owns the fingerprint (or there is no fleet);
    [`Reply r] — the owning peer answered [r];
    [`Fallback reason] — the owner is unreachable or backing off, take
    the local path.  Structural, so [Amos_fleet] can implement it
    without a dependency cycle. *)

type router =
  fingerprint:string -> deadline_ms:int option -> Protocol.request -> route
(** Consulted after both the hot cache and the plan cache miss, and
    never for requests that already arrived from a peer (fleet routing
    is bounded to one hop).  A [`Reply (Plan_r _)] is re-admitted into
    the hot cache and served with source ["peer"]; any other peer
    answer degrades to the local path — an owner being down is never a
    client-visible error.

    [deadline_ms] is the {e remaining} budget for the hop: when the
    request envelope carried a deadline, the daemon has already
    subtracted its own elapsed time plus a forwarding margin, so the
    peer always observes strictly less budget than the client sent.  A
    budget too small to pay for a useful hop never reaches the router —
    the daemon falls back to local tuning and counts a
    [budget_fallbacks]. *)

type tune_outcome = {
  value : Amos_service.Plan_cache.value;
  evaluations : int;
}

type tuner =
  jobs:int ->
  accel:Amos.Accelerator.t ->
  op:Amos_ir.Operator.t ->
  budget:Amos_service.Fingerprint.budget ->
  seeds:Amos.Explore.candidate list ->
  progress:(Amos.Explore.progress -> unit) option ->
  abort:(unit -> bool) option ->
  tune_outcome
(** The exploration a pool task runs.  Injectable so tests can observe
    scheduling behaviour (count invocations, block on a latch) without
    paying for real tuning; the default races
    [Amos_service.Par_tune.tune] against the scalar roofline exactly
    like [Batch_compile].

    [progress] (when [Some]) must be invoked once per exploration
    generation with the aggregated best-so-far — the daemon fans it out
    to streaming waiters.  [abort] (when [Some]) should be polled at
    generation boundaries; a [true] means every waiter has walked away
    and the tuner may raise [Amos.Explore.Aborted] instead of finishing
    (the daemon then resolves the flight as busy).  Custom test tuners
    are free to ignore both.

    With a persistent cache directory and no custom tuner, the default
    additionally feeds the learned cost model: every simulator
    measurement is appended to [Amos_learn.Obs_log] (the
    [observations.log] next to the plans), and when a fitted
    [model.amos] file is present in the directory — written by
    [amos model fit] — its calibrated screen is applied to every tune
    (loaded per tune, so refitting takes effect without a restart). *)

type t

val create :
  ?tuner:tuner -> ?clock:Amos_service.Clock.t -> ?router:router -> config -> t
(** Bind the configured listeners and start the worker pool.  Raises
    [Unix.Unix_error] when an endpoint is unusable (a stale socket file
    is silently replaced), [Invalid_argument] when the config names no
    listener at all.  [clock] (default {!Amos_service.Clock.real})
    drives the uptime, both cache layers' access stamps, and tune
    timing — tests pass a virtual clock to pin age-dependent eviction
    without sleeping. *)

val set_router : t -> router -> unit
(** Install (or replace) the fleet router after creation — the usual
    order when the ring must contain this daemon's own bound TCP port,
    which {!create} chose.  Safe before or during {!serve}. *)

val tcp_port : t -> int option
(** The bound TCP port ([Some] even when the config asked for port 0),
    [None] when no TCP listener is configured. *)

val serve : t -> unit
(** Run the accept loop until shutdown; returns after the socket is
    released and every connection thread has finished.  Run it on a
    dedicated thread for in-process use (tests, bench). *)

val stop : t -> unit
(** Programmatic graceful shutdown: drain and stop.  Idempotent; safe
    from any thread. *)

val stats : t -> Protocol.server_stats
(** Snapshot, same data a [Stats] request returns. *)

val drain_quarantined_once : t -> bool
(** One step of the background quarantine drain, normally invoked from
    the accept loop's idle ticks: when the tuning pool is idle, pick
    the lexicographically first [*.plan.quarantined] fingerprint whose
    operator specification the daemon has seen (via an earlier
    [Tune]/[Lookup]) and re-tune it on the pool; the quarantine file is
    removed only after the fresh plan is stored.  A quarantined
    fingerprint that regained a live entry is just swept.  Returns
    [false] when there is nothing to do — no cache directory, the
    daemon is stopping or the pool is busy (the drain never delays
    client work), or no quarantined fingerprint is actionable.
    Exposed for deterministic tests. *)
