(** Single-flight deduplication of keyed work.

    Two clients asking the daemon to tune the same fingerprint should
    share one exploration, not run two.  The table tracks one {e flight}
    per key: the first caller to {!acquire} a key becomes the leader and
    owns producing the result; everyone else joins the existing flight
    and {!wait}s for the leader's {!complete}.

    The leader must always complete its flight — including on failure
    and on admission-control rejection (complete with the error/busy
    value) — or joiners block forever; lean on [Fun.protect].  Safe
    across systhreads and domains (stdlib [Mutex]/[Condition]). *)

type 'a t
type 'a flight

val create : unit -> 'a t

val acquire : 'a t -> string -> [ `Lead of 'a flight | `Join of 'a flight ]
(** Register interest in [key].  [`Lead] means no flight existed: the
    caller owns the work and must eventually {!complete} the returned
    flight.  [`Join] shares a flight already in progress. *)

val complete : 'a t -> 'a flight -> 'a -> unit
(** Publish the result, wake all joiners, and retire the flight (a
    subsequent {!acquire} of the same key starts a fresh one).
    Completing an already-completed flight is a no-op. *)

val wait : 'a t -> 'a flight -> 'a
(** Block until the flight's leader completes it; leaders may wait on
    their own flight when the work happens elsewhere (a pool task). *)

val in_flight : 'a t -> int
(** Number of keys currently flying. *)
