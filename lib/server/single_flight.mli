(** Single-flight deduplication of keyed work, with per-waiter
    progress streams, cancellation and detach.

    Two clients asking the daemon to tune the same fingerprint should
    share one exploration, not run two.  The table tracks one {e flight}
    per key: the first caller to {!acquire} a key becomes the leader and
    owns producing the result (of type ['a]); everyone else joins the
    existing flight.  Each caller — leader included — holds a
    {!waiter}: its private handle for collecting the result, receiving
    ['p] progress snapshots ({!publish} / {!next}), being {!cancel}led,
    and {!detach}ing.

    Delivery is enqueue-only: {!publish} pushes into per-waiter queues
    and each waiter drains its own queue from its own connection
    thread, so a dead or slow client socket can never block the flight
    or its co-waiters.  When the {e last} attached waiter detaches from
    an unresolved flight, the flight's abort flag rises
    ({!abort_requested}) — the exploration polls it at generation
    boundaries and tears itself down; a fresh {!acquire} before the
    exploration notices withdraws the request.

    The leader must always complete its flight — including on failure,
    abort and admission-control rejection (complete with the
    error/busy value) — or waiters block forever; lean on
    [Fun.protect].  Safe across systhreads and domains (stdlib
    [Mutex]/[Condition]). *)

type ('a, 'p) t
type ('a, 'p) flight
type ('a, 'p) waiter

val create : unit -> ('a, 'p) t

val acquire :
  ?streaming:bool ->
  ('a, 'p) t ->
  string ->
  [ `Lead of ('a, 'p) waiter | `Join of ('a, 'p) waiter ]
(** Register interest in [key].  [`Lead] means no flight existed: the
    caller owns the work and must eventually {!complete} the flight
    behind the returned waiter.  [`Join] shares a flight already in
    progress (and withdraws a pending abort request, see
    {!abort_requested}).  [streaming] (default [false]) opts this
    waiter into {!publish}ed progress snapshots; non-streaming waiters
    never queue any. *)

val flight : ('a, 'p) waiter -> ('a, 'p) flight
(** The flight a waiter is attached to — what {!complete} and
    {!publish} take. *)

val complete : ('a, 'p) t -> ('a, 'p) flight -> 'a -> unit
(** Publish the result, wake all waiters, and retire the flight (a
    subsequent {!acquire} of the same key starts a fresh one).
    Completing an already-completed flight is a no-op. *)

val publish : ('a, 'p) t -> ('a, 'p) flight -> 'p -> unit
(** Enqueue one progress snapshot onto every attached streaming
    waiter's queue and wake them.  A no-op after {!complete}. *)

val wait : ('a, 'p) t -> ('a, 'p) waiter -> [ `Done of 'a | `Cancelled ]
(** Block until the flight completes ([`Done]) or this waiter is
    cancelled, ignoring progress snapshots — the non-streaming path. *)

val next :
  ('a, 'p) t ->
  ('a, 'p) waiter ->
  [ `Progress of 'p | `Done of 'a | `Cancelled ]
(** Block for this waiter's next event: a queued progress snapshot
    (delivered in publish order, all of them before [`Done]), the
    flight's completion, or this waiter's cancellation ([`Cancelled]
    preempts any still-queued progress). *)

val cancel : ('a, 'p) t -> ('a, 'p) waiter -> unit
(** Mark one waiter cancelled and wake it: its pending (or next)
    {!wait}/{!next} returns [`Cancelled].  The flight itself is
    untouched — co-waiters see nothing.  No-op on a detached or
    already-cancelled waiter. *)

val detach : ('a, 'p) t -> ('a, 'p) waiter -> int
(** Drop a waiter from its flight and return the number of waiters
    still attached.  Detaching the last waiter from an {e unresolved}
    flight raises the flight's abort flag.  Idempotent (repeat calls
    return the current count without decrementing). *)

val abort_requested : ('a, 'p) flight -> bool
(** Lock-free read of the flight's abort flag — polled by the
    exploration at generation boundaries.  Raised by the last
    {!detach}; withdrawn by a fresh {!acquire} of the key. *)

val in_flight : ('a, 'p) t -> int
(** Number of keys currently flying. *)
