(** Shared-token authentication for the TCP handshake. *)

val equal : string -> string -> bool
(** [equal expected presented] — string equality in time independent of
    where the strings first differ, so a remote peer cannot recover the
    token byte-by-byte from response timing. *)
