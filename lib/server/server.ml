open Amos
module Rng = Amos_tensor.Rng
module Fingerprint = Amos_service.Fingerprint
module Plan_cache = Amos_service.Plan_cache
module Par_tune = Amos_service.Par_tune
module Migrate = Amos_service.Migrate
module Batch_compile = Amos_service.Batch_compile
module Clock = Amos_service.Clock
module Fs_io = Amos_service.Fs_io
module Ops = Amos_workloads.Ops
module Suites = Amos_workloads.Suites
module Resnet = Amos_workloads.Resnet
module Networks = Amos_workloads.Networks

let log_src = Logs.Src.create "amos.server" ~doc:"AMOS plan-serving daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  socket_path : string option;
  tcp : (string * int) option;
  auth_token : string option;
  handshake_timeout_s : float;
  cache_dir : string option;
  workers : int;
  queue_capacity : int;
  jobs : int;
  hot_capacity : int;
  hot_max_bytes : int option;
  max_bytes : int option;
  max_tuning_seconds : float option;
  io_timeout_s : float;
  net : Net_io.t;
}

let default_config ~socket_path =
  {
    socket_path = Some socket_path;
    tcp = None;
    auth_token = None;
    handshake_timeout_s = 5.;
    cache_dir = None;
    workers = 2;
    queue_capacity = 8;
    jobs = 1;
    hot_capacity = 128;
    hot_max_bytes = None;
    max_bytes = None;
    max_tuning_seconds = None;
    io_timeout_s = 30.;
    net = Net_io.default;
  }

type tune_outcome = { value : Plan_cache.value; evaluations : int }

(* [progress] / [abort] arrive as plain options (not optional arguments)
   so the fully-labelled [tuner] shape stays erasure-free: progress
   feeds the per-generation streaming frames, abort is the
   last-waiter-detached flag polled at generation boundaries *)
type tuner =
  jobs:int ->
  accel:Accelerator.t ->
  op:Amos_ir.Operator.t ->
  budget:Fingerprint.budget ->
  seeds:Explore.candidate list ->
  progress:(Explore.progress -> unit) option ->
  abort:(unit -> bool) option ->
  tune_outcome

(* what a flight resolves to: every joiner (and the leader) gets one *)
type flight_result =
  | Fl_plan of Protocol.tune_reply
  | Fl_busy of float
  | Fl_error of string

type route = [ `Local | `Reply of Protocol.response | `Fallback of string ]

type router =
  fingerprint:string -> deadline_ms:int option -> Protocol.request -> route

type listener_kind = L_unix | L_tcp

type t = {
  config : config;
  tuner : tuner;
  clock : Clock.t;
  listeners : (listener_kind * Unix.file_descr) list;
  bound_tcp_port : int option;
  cache : Plan_cache.t;  (* guarded by cache_mu: one domain at a time *)
  cache_mu : Mutex.t;
  pool : Par_tune.Pool.t;
  admission : Admission.t;
      (* per-client DRR + deadline-aware admission in front of the pool *)
  flights : (flight_result, Protocol.progress_body) Single_flight.t;
  started_at : float;
  mu : Mutex.t;  (* guards everything below *)
  hot : Protocol.plan_wire Hot_cache.t;
  specs : (string, string * Amos_ir.Operator.t * Fingerprint.budget) Hashtbl.t;
      (* fingerprint -> (accel name, op, budget) for requests we have
         resolved: the idle drain can only re-tune a quarantined
         fingerprint whose specification it has seen *)
  mutable router : router option;
      (* installed after [create] (the fleet needs the bound TCP port
         to build its ring), consulted after both local layers miss *)
  streams :
    (int, (flight_result, Protocol.progress_body) Single_flight.waiter)
    Hashtbl.t;
      (* request_id -> live waiter, so a Cancel frame (usually from a
         second connection) can find the exchange it names *)
  mutable conn_counter : int;  (* distinct admission keys per connection *)
  mutable threads : Thread.t list;
  mutable stopping : bool;  (* no new tuning admitted *)
  mutable stopped : bool;  (* accept loop must exit *)
  mutable requests : int;
  mutable tunes : int;
  mutable deduped : int;
  mutable hot_hits : int;
  mutable cache_hits : int;
  mutable busy_rejections : int;
  mutable quarantine_retunes : int;
  mutable forwarded : int;
  mutable peer_hits : int;
  mutable peer_fallbacks : int;
  mutable budget_fallbacks : int;
  mutable auth_rejections : int;
  mutable deadline_rejections : int;
  mutable cancels : int;
}

(* Deadline budgeting for the one fleet hop: the forward subtracts the
   time this daemon already spent plus a fixed margin for the hop's own
   framing, so the peer always observes a strictly smaller budget than
   the client sent; a budget that cannot pay for the margin and a
   minimum useful hop skips the fleet entirely and tunes locally. *)
let forward_margin_ms = 5
let min_forward_budget_ms = 25

(* bound the spec ledger: a daemon fed unbounded distinct operators must
   not grow memory without limit *)
let spec_ledger_capacity = 512

(* DRR weight of the shared "peer" admission key: a forwarding daemon
   aggregates many end clients behind one connection, so it earns a
   larger service share than a single direct client *)
let peer_weight = 2

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* --- default tuner -------------------------------------------------- *)

(* mirror [Batch_compile.tune_fresh]: explore, then race the winner
   against the scalar roofline so a wire plan is never worse than not
   mapping the operator at all *)
(* [model] / [observe] arrive as plain options (not optional arguments)
   so the fully-labelled [tuner] shape stays erasure-free *)
let default_tuner_with ~model ~observe ~jobs ~accel ~op ~budget ~seeds
    ~progress ~abort =
  let rng = Rng.create budget.Fingerprint.seed in
  let mappings =
    List.concat_map
      (fun intr -> List.map Mapping.make (Mapping_gen.generate_op op intr))
      accel.Accelerator.intrinsics
  in
  if mappings = [] && seeds = [] then { value = Plan_cache.Scalar; evaluations = 0 }
  else
    let result =
      Par_tune.tune ~jobs ~population:budget.Fingerprint.population
        ~generations:budget.Fingerprint.generations
        ~measure_top:budget.Fingerprint.measure_top ~initial_population:seeds
        ?model ?observe ?progress ?abort ~rng ~accel ~mappings ()
    in
    let best = result.Explore.best in
    if
      best.Explore.measured < infinity
      && best.Explore.measured <= Batch_compile.scalar_seconds accel op
    then
      let c = best.Explore.candidate in
      {
        value = Plan_cache.Spatial (c.Explore.mapping, c.Explore.schedule);
        evaluations = result.Explore.evaluations;
      }
    else { value = Plan_cache.Scalar; evaluations = result.Explore.evaluations }

let default_tuner ~jobs ~accel ~op ~budget ~seeds ~progress ~abort =
  default_tuner_with ~model:None ~observe:None ~jobs ~accel ~op ~budget ~seeds
    ~progress ~abort

(* --- request resolution -------------------------------------------- *)

let resolve_accel name =
  match Accelerator.by_name name with
  | Some a -> a
  | None -> failwith ("unknown accelerator " ^ name)

let resolve_op = function
  | Protocol.Layer label ->
      Resnet.config (Resnet.by_label (String.uppercase_ascii label))
  | Protocol.Kind { kind; batch; index } -> (
      let k =
        match
          List.find_opt
            (fun k -> Ops.kind_name k = String.uppercase_ascii kind)
            Ops.all_kinds
        with
        | Some k -> k
        | None -> failwith ("unknown operator kind " ^ kind)
      in
      match List.nth_opt (Suites.configs_per_kind ~batch k) index with
      | Some op -> op
      | None -> failwith (Printf.sprintf "no config %d for kind %s" index kind))
  | Protocol.Dsl_text text -> (
      match Amos_ir.Dsl.parse ~name:"wire-op" text with
      | Ok op -> op
      | Error msg -> failwith ("operator DSL: " ^ msg))

let wire_of_value = function
  | Plan_cache.Scalar -> Protocol.Wire_scalar
  | Plan_cache.Spatial (m, sched) -> Protocol.Wire_spatial (Plan_io.save m sched)

(* --- hot cache ------------------------------------------------------ *)

(* wire-level footprint of a hot entry; scalar markers are tiny but must
   not be free, or a flood of them would never trigger eviction *)
let wire_bytes = function
  | Protocol.Wire_scalar -> 32
  | Protocol.Wire_spatial text -> String.length text

let hot_lookup t fingerprint =
  locked t.mu (fun () ->
      match Hot_cache.find t.hot fingerprint with
      | Some plan ->
          t.hot_hits <- t.hot_hits + 1;
          Some plan
      | None -> None)

let hot_put t fingerprint plan ~tuning_seconds =
  locked t.mu (fun () ->
      Hot_cache.put t.hot fingerprint plan ~bytes:(wire_bytes plan)
        ~tuning_seconds)

(* the tuning cost a cache-served plan amortizes, for hot admission *)
let cached_tuning_seconds t fingerprint =
  locked t.cache_mu (fun () ->
      match Plan_cache.info t.cache ~fingerprint with
      | Some it -> it.Amos_service.Retain.tuning_seconds
      | None -> Amos_service.Retain.default_tuning_seconds)

let record_spec t fingerprint ~accel_name ~op ~budget =
  locked t.mu (fun () ->
      if
        Hashtbl.mem t.specs fingerprint
        || Hashtbl.length t.specs < spec_ledger_capacity
      then Hashtbl.replace t.specs fingerprint (accel_name, op, budget))

(* --- creation ------------------------------------------------------- *)

let create ?tuner ?clock ?router config =
  let clock = match clock with Some c -> c | None -> Clock.real () in
  let tuner =
    match tuner with
    | Some t -> t
    | None -> (
        match config.cache_dir with
        | None -> default_tuner
        | Some dir -> (
            (* a persistent daemon feeds the learned cost model: every
               simulator measurement lands in the observation log next
               to the plans, and a fitted model file (if present) turns
               on the calibrated screen *)
            match Amos_learn.Obs_log.create ~clock ~dir () with
            | exception e ->
                Log.warn (fun m ->
                    m "observation log unavailable (%s); tuning without it"
                      (Printexc.to_string e));
                default_tuner
            | obs_log ->
                let model_path =
                  Filename.concat dir Amos_learn.Calibrate.file_name
                in
                fun ~jobs ~accel ~op ~budget ~seeds ~progress ~abort ->
                  let fingerprint = Fingerprint.key ~accel ~op ~budget in
                  let observe =
                    Some
                      (Amos_learn.Obs_log.observer obs_log
                         ~config:accel.Accelerator.config ~fingerprint
                         ~accel:accel.Accelerator.name)
                  in
                  let model =
                    if Fs_io.exists (Fs_io.real ()) model_path then
                      match Amos_learn.Calibrate.load ~path:model_path () with
                      | m -> Some (Amos_learn.Screen.of_model ~accel m)
                      | exception e ->
                          Log.warn (fun m ->
                              m "model file %s unusable (%s); screening \
                                 uncalibrated"
                                model_path (Printexc.to_string e));
                          None
                    else None
                  in
                  default_tuner_with ~model ~observe ~jobs ~accel ~op ~budget
                    ~seeds ~progress ~abort))
  in
  (* a client dying mid-reply must surface as EPIPE on the write, not
     kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listeners =
    let close_all ls =
      List.iter (fun (_, fd) -> try Unix.close fd with Unix.Unix_error _ -> ()) ls
    in
    let unix_ls =
      match config.socket_path with
      | None -> []
      | Some path -> [ (L_unix, Transport.listen (Transport.Unix_path path)) ]
    in
    let tcp_ls =
      match config.tcp with
      | None -> []
      | Some (host, port) -> (
          match Transport.listen (Transport.Tcp { host; port }) with
          | fd -> [ (L_tcp, fd) ]
          | exception e ->
              close_all unix_ls;
              raise e)
    in
    match unix_ls @ tcp_ls with
    | [] -> invalid_arg "Server.create: no listener (need socket_path or tcp)"
    | ls -> ls
  in
  let bound_tcp_port =
    List.find_map
      (fun (kind, fd) ->
        if kind = L_tcp then Transport.bound_port fd else None)
      listeners
  in
  let cache =
    Plan_cache.create ?max_bytes:config.max_bytes
      ?max_tuning_seconds:config.max_tuning_seconds ~clock
      ?dir:config.cache_dir ()
  in
  {
    config;
    tuner;
    clock;
    listeners;
    bound_tcp_port;
    cache;
    cache_mu = Mutex.create ();
    (* the admission queue feeds the pool only while a worker slot is
       free, so the pool's own queue never holds more than [workers]
       tasks — [queue_capacity] now bounds the admission backlog *)
    pool =
      Par_tune.Pool.create ~workers:(max 1 config.workers)
        ~capacity:(max 1 config.workers);
    admission =
      Admission.create ~clock
        ~weight_of:(fun key -> if key = "peer" then peer_weight else 1)
        ~workers:(max 1 config.workers)
        ~capacity:(max 1 config.queue_capacity) ();
    flights = Single_flight.create ();
    started_at = Clock.now clock;
    mu = Mutex.create ();
    hot =
      Hot_cache.create ?max_bytes:config.hot_max_bytes
        ~capacity:config.hot_capacity ~clock ();
    specs = Hashtbl.create 64;
    router;
    streams = Hashtbl.create 16;
    conn_counter = 0;
    threads = [];
    stopping = false;
    stopped = false;
    requests = 0;
    tunes = 0;
    deduped = 0;
    hot_hits = 0;
    cache_hits = 0;
    busy_rejections = 0;
    quarantine_retunes = 0;
    forwarded = 0;
    peer_hits = 0;
    peer_fallbacks = 0;
    budget_fallbacks = 0;
    auth_rejections = 0;
    deadline_rejections = 0;
    cancels = 0;
  }

let set_router t router = locked t.mu (fun () -> t.router <- Some router)
let tcp_port t = t.bound_tcp_port

let stats t : Protocol.server_stats =
  let queue_load = Par_tune.Pool.load t.pool + Admission.depth t.admission in
  let in_flight = Single_flight.in_flight t.flights in
  let cache_bytes =
    locked t.cache_mu (fun () -> Plan_cache.disk_bytes t.cache)
  in
  locked t.mu (fun () ->
      {
        Protocol.uptime_s = Clock.now t.clock -. t.started_at;
        requests = t.requests;
        tunes = t.tunes;
        deduped = t.deduped;
        hot_hits = t.hot_hits;
        cache_hits = t.cache_hits;
        busy_rejections = t.busy_rejections;
        in_flight;
        queue_load;
        hot_bytes = Hot_cache.bytes t.hot;
        hot_tuning_seconds = Hot_cache.tuning_seconds t.hot;
        cache_bytes;
        quarantine_retunes = t.quarantine_retunes;
        forwarded = t.forwarded;
        peer_hits = t.peer_hits;
        peer_fallbacks = t.peer_fallbacks;
        budget_fallbacks = t.budget_fallbacks;
        auth_rejections = t.auth_rejections;
        deadline_rejections = t.deadline_rejections;
        cancels = t.cancels;
      })

(* --- tuning flow ---------------------------------------------------- *)

let retry_hint t =
  0.1
  +. 0.05
     *. float_of_int (Par_tune.Pool.load t.pool + Admission.load t.admission)

let response_of_flight ~deduped = function
  | Fl_plan r ->
      Protocol.Plan_r (if deduped then { r with Protocol.source = "deduped" } else r)
  | Fl_busy retry_after_s -> Protocol.Busy_r { retry_after_s }
  | Fl_error msg -> Protocol.Error_r msg

(* Keep the admission backlog flowing into the pool: hand out tasks
   while a worker slot is free.  Every pool task re-pumps when it
   finishes, so one submit's pump keeps the chain alive for the whole
   backlog. *)
let rec pump t =
  match Admission.take t.admission with
  | None -> ()
  | Some task ->
      let run () =
        task ();
        pump t
      in
      if not (Par_tune.Pool.try_submit t.pool run) then
        (* only reachable when the pool is shutting down under a racing
           submit: run inline rather than strand the flight *)
        run ()

let progress_body (p : Explore.progress) : Protocol.progress_body =
  let known v = if Float.is_finite v then Some v else None in
  {
    Protocol.pg_generation = p.Explore.pr_generation;
    pg_best_predicted = known p.Explore.pr_best_predicted;
    pg_best_measured = known p.Explore.pr_best_measured;
    pg_evaluations = p.Explore.pr_evaluations;
  }

let register_stream t ~request_id w =
  match request_id with
  | None -> ()
  | Some id -> locked t.mu (fun () -> Hashtbl.replace t.streams id w)

let unregister_stream t ~request_id =
  match request_id with
  | None -> ()
  | Some id -> locked t.mu (fun () -> Hashtbl.remove t.streams id)

(* Collect a waiter's outcome.  A streaming waiter drains its progress
   queue through [emit] — one [Progress_r] frame per snapshot, written
   from this connection's own thread, so a dead or slow socket stalls
   only itself; an emit failure detaches the waiter and returns [None],
   which closes the connection without a final reply.  Either way the
   shared flight is untouched: co-waiters keep streaming, and only the
   {e last} detach raises the exploration's abort flag. *)
let await_flight t ~streaming ~emit ~deduped ~request_id w =
  let finish resp =
    unregister_stream t ~request_id;
    ignore (Single_flight.detach t.flights w);
    resp
  in
  if streaming then
    let rec loop () =
      match Single_flight.next t.flights w with
      | `Progress p ->
          if emit (Protocol.Progress_r p) then loop () else finish None
      | `Done r -> finish (Some (response_of_flight ~deduped r))
      | `Cancelled -> finish (Some Protocol.Cancelled_r)
    in
    loop ()
  else
    match Single_flight.wait t.flights w with
    | `Done r -> finish (Some (response_of_flight ~deduped r))
    | `Cancelled -> finish (Some Protocol.Cancelled_r)

let cache_lookup t ~accel ~op ~budget =
  locked t.cache_mu (fun () ->
      match Plan_cache.lookup t.cache ~accel ~op ~budget with
      | v -> v
      | exception _ -> None)

let migration_seeds t ~accel ~op ~budget =
  locked t.cache_mu (fun () ->
      match Migrate.from_cache t.cache ~accel ~op ~budget with
      | Some o -> o.Migrate.seeds
      | None -> []
      | exception _ -> [])

(* Consult the fleet router after both local layers miss.  [None] means
   "take the local path": no router is installed, the ring says this
   daemon owns the fingerprint, the request already crossed one hop
   (forwarded requests are never forwarded again, so two daemons with
   disagreeing rings cannot bounce a request between them), or the
   owner could not serve it (down, busy, erroring) — owner failure
   degrades to local work, never to a client-visible error.  A plan the
   owner served is re-admitted into the hot cache so the next request
   for it is local. *)
(* [deadline] is [(deadline_ms, arrival)] from the request envelope:
   the budget the client sent and the clock reading when the frame was
   decoded.  The hop may spend only what is left after this daemon's
   own elapsed time and the forwarding margin. *)
let remaining_budget t ~deadline =
  match deadline with
  | None -> `No_deadline
  | Some (d, arrival) ->
      let elapsed_ms =
        int_of_float (Float.max 0. (Clock.now t.clock -. arrival) *. 1000.)
      in
      let remaining = d - elapsed_ms - forward_margin_ms in
      if remaining < min_forward_budget_ms then `Exhausted
      else `Remaining remaining

let route_to_owner t ~from_peer ~deadline ~fingerprint req =
  if from_peer then None
  else
    match locked t.mu (fun () -> t.router) with
    | None -> None
    | Some route -> (
        match remaining_budget t ~deadline with
        | `Exhausted ->
            locked t.mu (fun () ->
                t.budget_fallbacks <- t.budget_fallbacks + 1);
            Log.info (fun m ->
                m "deadline budget too small to forward %s: serving locally"
                  fingerprint);
            None
        | (`No_deadline | `Remaining _) as budget -> (
        let deadline_ms =
          match budget with `Remaining r -> Some r | `No_deadline -> None
        in
        match route ~fingerprint ~deadline_ms req with
        | `Local -> None
        | `Fallback reason ->
            locked t.mu (fun () -> t.peer_fallbacks <- t.peer_fallbacks + 1);
            Log.info (fun m ->
                m "owner unavailable for %s (%s): serving locally"
                  fingerprint reason);
            None
        | `Reply (Protocol.Plan_r r) ->
            (* a forwarded answer carries tuning cost only when the
               owner tuned just now; a hot/cache hit arrives with 0 and
               is admitted at the conservative default *)
            let tuning_seconds =
              if r.Protocol.tuning_seconds > 0. then r.Protocol.tuning_seconds
              else Amos_service.Retain.default_tuning_seconds
            in
            hot_put t fingerprint r.Protocol.plan ~tuning_seconds;
            locked t.mu (fun () ->
                t.forwarded <- t.forwarded + 1;
                t.peer_hits <- t.peer_hits + 1);
            Some (Protocol.Plan_r { r with Protocol.source = "peer" })
        | `Reply Protocol.Not_found_r ->
            locked t.mu (fun () -> t.forwarded <- t.forwarded + 1);
            Some Protocol.Not_found_r
        | `Reply _ ->
            (* the owner answered but could not serve (busy, error) *)
            locked t.mu (fun () ->
                t.forwarded <- t.forwarded + 1;
                t.peer_fallbacks <- t.peer_fallbacks + 1);
            None
        | exception e ->
            locked t.mu (fun () -> t.peer_fallbacks <- t.peer_fallbacks + 1);
            Log.warn (fun m ->
                m "fleet routing failed for %s: %s" fingerprint
                  (Printexc.to_string e));
            None))

let handle_tune t ~from_peer ~client ~env ~emit ~deadline ~migrate
    ~accel:accel_name ~op:op_spec ~budget =
  let accel = resolve_accel accel_name in
  let op = resolve_op op_spec in
  let fingerprint = Fingerprint.key ~accel ~op ~budget in
  record_spec t fingerprint ~accel_name ~op ~budget;
  match hot_lookup t fingerprint with
  | Some plan ->
      (* a hot hit streams nothing: the final reply is the only frame *)
      Some
        (Protocol.Plan_r
           {
             Protocol.fingerprint;
             plan;
             source = "hot";
             evaluations = 0;
             tuning_seconds = 0.;
           })
  | None -> (
      match cache_lookup t ~accel ~op ~budget with
      | Some value ->
          let plan = wire_of_value value in
          locked t.mu (fun () -> t.cache_hits <- t.cache_hits + 1);
          hot_put t fingerprint plan
            ~tuning_seconds:(cached_tuning_seconds t fingerprint);
          Some
            (Protocol.Plan_r
               {
                 Protocol.fingerprint;
                 plan;
                 source = "cache";
                 evaluations = 0;
                 tuning_seconds = 0.;
               })
      | None ->
          let forwarded =
            let req =
              if migrate then
                Protocol.Migrate_tune
                  { accel = accel_name; op = op_spec; budget }
              else Protocol.Tune { accel = accel_name; op = op_spec; budget }
            in
            route_to_owner t ~from_peer ~deadline ~fingerprint req
          in
          (match forwarded with
          | Some (Protocol.Plan_r _ as r) -> Some r
          | Some _ | None ->
          if locked t.mu (fun () -> t.stopping) then
            Some (Protocol.Busy_r { retry_after_s = retry_hint t })
          else
            let streaming = env.Protocol.env_accept_stream in
            let request_id = env.Protocol.env_request_id in
            match Single_flight.acquire ~streaming t.flights fingerprint with
            | `Join w ->
                locked t.mu (fun () -> t.deduped <- t.deduped + 1);
                register_stream t ~request_id w;
                await_flight t ~streaming ~emit ~deduped:true ~request_id w
            | `Lead w ->
                let fl = Single_flight.flight w in
                (* seeds are gathered before the task is queued so the
                   pool task touches the shared cache only for the final
                   store *)
                let seeds =
                  if migrate then migration_seeds t ~accel ~op ~budget else []
                in
                let task () =
                  let t0 = Clock.now t.clock in
                  (* per-generation snapshots fan out to every attached
                     streaming waiter; the abort flag rises when the
                     last of them detaches *)
                  let progress =
                    Some
                      (fun p ->
                        Single_flight.publish t.flights fl (progress_body p))
                  in
                  let abort =
                    Some (fun () -> Single_flight.abort_requested fl)
                  in
                  let outcome =
                    match
                      t.tuner ~jobs:t.config.jobs ~accel ~op ~budget ~seeds
                        ~progress ~abort
                    with
                    | o -> `Ok o
                    | exception Explore.Aborted -> `Aborted
                    | exception e -> `Error (Printexc.to_string e)
                  in
                  let dt = Clock.now t.clock -. t0 in
                  match outcome with
                  | `Ok { value; evaluations } ->
                      locked t.cache_mu (fun () ->
                          try
                            Plan_cache.store t.cache ~accel ~op ~budget
                              ~tuning_seconds:dt value
                          with e ->
                            Log.warn (fun m ->
                                m "plan store failed for %s: %s" fingerprint
                                  (Printexc.to_string e)));
                      let plan = wire_of_value value in
                      hot_put t fingerprint plan ~tuning_seconds:dt;
                      locked t.mu (fun () -> t.tunes <- t.tunes + 1);
                      Single_flight.complete t.flights fl
                        (Fl_plan
                           {
                             Protocol.fingerprint;
                             plan;
                             source = "tuned";
                             evaluations;
                             tuning_seconds = dt;
                           })
                  | `Aborted ->
                      (* every waiter walked away and the exploration
                         tore itself down at a generation boundary; a
                         racing joiner resolves busy and retries fresh *)
                      Single_flight.complete t.flights fl
                        (Fl_busy (retry_hint t))
                  | `Error msg ->
                      Single_flight.complete t.flights fl
                        (Fl_error ("tuning failed: " ^ msg))
                in
                let admission_deadline =
                  match deadline with
                  | None -> None
                  | Some (d, arrival) ->
                      let elapsed_ms =
                        int_of_float
                          (Float.max 0. (Clock.now t.clock -. arrival)
                          *. 1000.)
                      in
                      Some (max 0 (d - elapsed_ms))
                in
                (match
                   Admission.submit t.admission ~client
                     ?deadline_ms:admission_deadline task
                 with
                | `Admitted ->
                    register_stream t ~request_id w;
                    pump t;
                    await_flight t ~streaming ~emit ~deduped:false ~request_id
                      w
                | `Busy ->
                    (* admission control: refuse, and resolve the flight
                       as busy so racing joiners are not stranded *)
                    let hint = retry_hint t in
                    locked t.mu (fun () ->
                        t.busy_rejections <- t.busy_rejections + 1);
                    Single_flight.complete t.flights fl (Fl_busy hint);
                    ignore (Single_flight.detach t.flights w);
                    Some (Protocol.Busy_r { retry_after_s = hint })
                | `Deadline projected_wait_s ->
                    (* the queue's projected wait already exceeds the
                       request's budget: refused before enqueueing, with
                       the evidence — never camped *)
                    locked t.mu (fun () ->
                        t.deadline_rejections <- t.deadline_rejections + 1);
                    Single_flight.complete t.flights fl
                      (Fl_busy (retry_hint t));
                    ignore (Single_flight.detach t.flights w);
                    Some (Protocol.Deadline_hint_r { projected_wait_s }))))

let handle_lookup t ~from_peer ~deadline ~accel:accel_name ~op:op_spec ~budget
    =
  let accel = resolve_accel accel_name in
  let op = resolve_op op_spec in
  let fingerprint = Fingerprint.key ~accel ~op ~budget in
  record_spec t fingerprint ~accel_name ~op ~budget;
  match hot_lookup t fingerprint with
  | Some plan ->
      Protocol.Plan_r
        {
          Protocol.fingerprint;
          plan;
          source = "hot";
          evaluations = 0;
          tuning_seconds = 0.;
        }
  | None -> (
      match cache_lookup t ~accel ~op ~budget with
      | Some value ->
          let plan = wire_of_value value in
          locked t.mu (fun () -> t.cache_hits <- t.cache_hits + 1);
          hot_put t fingerprint plan
            ~tuning_seconds:(cached_tuning_seconds t fingerprint);
          Protocol.Plan_r
            {
              Protocol.fingerprint;
              plan;
              source = "cache";
              evaluations = 0;
              tuning_seconds = 0.;
            }
      | None -> (
          (* the owner is authoritative for its fingerprints: its plan
             is served, its miss is a miss, and an unreachable owner
             degrades to the local answer — also a miss here *)
          let req =
            Protocol.Lookup { accel = accel_name; op = op_spec; budget }
          in
          match route_to_owner t ~from_peer ~deadline ~fingerprint req with
          | Some (Protocol.Plan_r _ as r) -> r
          | Some _ | None -> Protocol.Not_found_r))

let handle_compile t ~accel:accel_name ~network ~batch ~budget ~jobs =
  let accel = resolve_accel accel_name in
  let net =
    let wanted = String.lowercase_ascii network in
    match
      List.find_opt
        (fun (n : Networks.t) ->
          String.lowercase_ascii n.Networks.name = wanted)
        (Networks.all ~batch)
    with
    | Some n -> n
    | None -> failwith ("unknown network " ^ network)
  in
  (* own handle over the same directory: long compiles stay off the
     shared handle (and the tuning pool); handles see each other's
     stores through the journal.  Same budgets and clock, so the
     economy is enforced no matter which handle stored last. *)
  let cache =
    Plan_cache.create ?max_bytes:t.config.max_bytes
      ?max_tuning_seconds:t.config.max_tuning_seconds ~clock:t.clock
      ?dir:t.config.cache_dir ()
  in
  let jobs = max 1 (min 8 jobs) in
  let net_report, svc_report =
    Batch_compile.compile_network ~jobs ~budget ~cache accel net
  in
  Protocol.Compiled_r
    {
      Protocol.network = net_report.Compiler.network_name;
      total_ops = net_report.Compiler.total_ops;
      mapped_ops = net_report.Compiler.mapped_ops;
      network_seconds = net_report.Compiler.network_seconds;
      stages = svc_report.Batch_compile.tensor_stages;
      comp_cache_hits = svc_report.Batch_compile.cache_hits;
      comp_tuned = svc_report.Batch_compile.cache_misses;
    }

(* --- quarantined-fingerprint retune --------------------------------- *)

let quarantine_suffix = ".plan.quarantined"

(* re-tune one quarantined fingerprint on the pool; [false] when the
   pool is busy or another flight already owns the fingerprint *)
let retune_quarantined t ~fp ~qpath ~accel ~op ~budget =
  match Single_flight.acquire t.flights fp with
  | `Join w ->
      (* a client-driven tune is already producing it; withdraw the
         interest this probe just registered *)
      ignore (Single_flight.detach t.flights w);
      false
  | `Lead w ->
      let f = Single_flight.flight w in
      (* the drain's own waiter stays attached (never detached) so the
         abort flag cannot rise under a retune nobody is watching *)
      let task () =
        let t0 = Clock.now t.clock in
        let outcome =
          match
            t.tuner ~jobs:t.config.jobs ~accel ~op ~budget ~seeds:[]
              ~progress:None ~abort:None
          with
          | o -> Ok o
          | exception e -> Error (Printexc.to_string e)
        in
        let dt = Clock.now t.clock -. t0 in
        match outcome with
        | Ok { value; evaluations } ->
            locked t.cache_mu (fun () ->
                try
                  Plan_cache.store t.cache ~accel ~op ~budget
                    ~tuning_seconds:dt value
                with e ->
                  Log.warn (fun m ->
                      m "retune store failed for %s: %s" fp
                        (Printexc.to_string e)));
            (* only after a good plan is back in the cache does the
               quarantined copy stop being post-mortem material *)
            (try Fs_io.remove (Plan_cache.fs_handle t.cache) qpath
             with Sys_error _ | Fs_io.Injected _ -> ());
            let plan = wire_of_value value in
            hot_put t fp plan ~tuning_seconds:dt;
            locked t.mu (fun () ->
                t.quarantine_retunes <- t.quarantine_retunes + 1);
            Log.info (fun m -> m "re-tuned quarantined fingerprint %s" fp);
            Single_flight.complete t.flights f
              (Fl_plan
                 {
                   Protocol.fingerprint = fp;
                   plan;
                   source = "retuned";
                   evaluations;
                   tuning_seconds = dt;
                 })
        | Error msg ->
            Single_flight.complete t.flights f
              (Fl_error ("retune failed: " ^ msg))
      in
      (match Admission.submit t.admission ~client:"retune" task with
      | `Admitted ->
          pump t;
          true
      | `Busy | `Deadline _ ->
          Single_flight.complete t.flights f (Fl_busy (retry_hint t));
          false)

(* One low-priority step of the background drain: only when the tuning
   pool is idle, pick the first quarantined fingerprint whose
   specification a client request has taught us and re-tune it.  A
   quarantine file whose fingerprint already has a live entry again is
   simply removed — the corruption was superseded. *)
let drain_quarantined_once t =
  match t.config.cache_dir with
  | None -> false
  | Some dir ->
      if locked t.mu (fun () -> t.stopping) then false
      else if Par_tune.Pool.load t.pool > 0 || Admission.load t.admission > 0
      then false
      else begin
        let fs = Plan_cache.fs_handle t.cache in
        let quarantined =
          Fs_io.list_dir fs dir
          |> List.filter (fun n -> Filename.check_suffix n quarantine_suffix)
          |> List.map (fun n -> Filename.chop_suffix n quarantine_suffix)
          |> List.sort compare
        in
        let rec step = function
          | [] -> false
          | fp :: rest -> (
              let qpath = Filename.concat dir (fp ^ quarantine_suffix) in
              if Fs_io.exists fs (Filename.concat dir (fp ^ ".plan")) then begin
                (try Fs_io.remove fs qpath
                 with Sys_error _ | Fs_io.Injected _ -> ());
                true
              end
              else
                match locked t.mu (fun () -> Hashtbl.find_opt t.specs fp) with
                | None -> step rest (* never seen its spec: leave it *)
                | Some (accel_name, op, budget) -> (
                    match resolve_accel accel_name with
                    | exception _ -> step rest
                    | accel ->
                        retune_quarantined t ~fp ~qpath ~accel ~op ~budget
                        || step rest))
        in
        step quarantined
      end

(* --- shutdown ------------------------------------------------------- *)

let drain_and_stop t =
  let already = locked t.mu (fun () ->
      let was = t.stopping in
      t.stopping <- true;
      was)
  in
  if not already then
    Log.info (fun m -> m "draining: waiting for in-flight tuning to finish");
  (* every admitted task still completes: the pump chain keeps feeding
     the pool as worker slots free up, so wait for the admission
     backlog to empty before draining the pool itself *)
  let rec wait_admission () =
    if Admission.load t.admission > 0 then begin
      pump t;
      Thread.delay 0.01;
      wait_admission ()
    end
  in
  wait_admission ();
  Par_tune.Pool.shutdown ~drain:true t.pool;
  locked t.mu (fun () -> t.stopped <- true)

let stop t = drain_and_stop t

(* --- dispatch ------------------------------------------------------- *)

(* [emit] writes one interleaved response frame on the requesting
   connection, returning [false] when the socket is gone.  A [None]
   final response means the connection desynced mid-stream and must be
   dropped without another frame. *)
let dispatch t ~from_peer ~client ~emit payload =
  locked t.mu (fun () -> t.requests <- t.requests + 1);
  match Protocol.decode_request payload with
  | Error msg -> (Some (Protocol.Error_r msg), false)
  | Ok (req, env) -> (
      (* the envelope budget starts burning the moment the frame is
         decoded: everything this daemon spends before a forward is
         subtracted from what the peer hop may use *)
      let deadline =
        Option.map
          (fun d -> (d, Clock.now t.clock))
          env.Protocol.env_deadline_ms
      in
      match req with
      | Protocol.Health ->
          ( Some
              (Protocol.Ok_r
                 (Printf.sprintf "amosd protocol v%d" Protocol.version)),
            false )
      | Protocol.Stats -> (Some (Protocol.Stats_r (stats t)), false)
      | Protocol.Shutdown ->
          drain_and_stop t;
          (Some (Protocol.Ok_r "drained"), true)
      | Protocol.Cancel { request_id } -> (
          (* detach the named waiter (usually on another connection):
             its stream terminates with [Cancelled_r]; the shared
             flight keeps running for its co-waiters *)
          match
            locked t.mu (fun () -> Hashtbl.find_opt t.streams request_id)
          with
          | Some w ->
              Single_flight.cancel t.flights w;
              locked t.mu (fun () -> t.cancels <- t.cancels + 1);
              (Some (Protocol.Ok_r "cancelled"), false)
          | None -> (Some Protocol.Not_found_r, false))
      | Protocol.Lookup { accel; op; budget } -> (
          match handle_lookup t ~from_peer ~deadline ~accel ~op ~budget with
          | r -> (Some r, false)
          | exception Failure msg -> (Some (Protocol.Error_r msg), false)
          | exception e ->
              (Some (Protocol.Error_r (Printexc.to_string e)), false))
      | Protocol.Tune { accel; op; budget } -> (
          match
            handle_tune t ~from_peer ~client ~env ~emit ~deadline
              ~migrate:false ~accel ~op ~budget
          with
          | r -> (r, false)
          | exception Failure msg -> (Some (Protocol.Error_r msg), false)
          | exception e ->
              (Some (Protocol.Error_r (Printexc.to_string e)), false))
      | Protocol.Migrate_tune { accel; op; budget } -> (
          match
            handle_tune t ~from_peer ~client ~env ~emit ~deadline
              ~migrate:true ~accel ~op ~budget
          with
          | r -> (r, false)
          | exception Failure msg -> (Some (Protocol.Error_r msg), false)
          | exception e ->
              (Some (Protocol.Error_r (Printexc.to_string e)), false))
      | Protocol.Compile { accel; network; batch; budget; jobs } -> (
          match handle_compile t ~accel ~network ~batch ~budget ~jobs with
          | r -> (Some r, false)
          | exception Failure msg -> (Some (Protocol.Error_r msg), false)
          | exception e ->
              (Some (Protocol.Error_r (Printexc.to_string e)), false)))

(* --- connections ---------------------------------------------------- *)

let send_response t fd resp =
  match
    Protocol.write_frame ~net:t.config.net fd (Protocol.encode_response resp)
  with
  | () -> true
  | exception (Unix.Unix_error _ | Sys_error _ | Net_io.Injected _) -> false

(* TCP connections must introduce themselves before the first request:
   the hello carries the protocol version and the shared token, and a
   connection failing either check gets a typed denial — never a hang,
   never a misparsed request.  The whole exchange runs under its own
   short receive deadline so an unauthenticated peer that connects and
   goes silent cannot hold the accept slot open.  Returns the declared
   origin ([true] = another daemon) on success, [None] when the
   connection must be dropped. *)
let handshake t fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO
       (Float.max 0.05 t.config.handshake_timeout_s)
   with Unix.Unix_error _ -> ());
  let deny reason =
    locked t.mu (fun () -> t.auth_rejections <- t.auth_rejections + 1);
    Log.info (fun m -> m "handshake denied: %s" reason);
    (try
       Protocol.write_frame ~net:t.config.net fd
         (Protocol.encode_hello_reply (Protocol.Hello_denied reason))
     with Unix.Unix_error _ | Sys_error _ | Net_io.Injected _ -> ());
    None
  in
  match Protocol.read_frame ~net:t.config.net fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      deny "handshake deadline exceeded"
  | exception (Unix.Unix_error _ | Sys_error _ | Net_io.Injected _) -> None
  | Error `Eof -> None
  | Error (`Bad msg) -> deny ("bad hello frame: " ^ msg)
  | Ok payload -> (
      match Protocol.decode_hello payload with
      | Error msg -> deny ("handshake required: " ^ msg)
      | Ok h ->
          if h.Protocol.hello_version <> Protocol.version then
            deny
              (Printf.sprintf "unsupported protocol version %d (want %d)"
                 h.Protocol.hello_version Protocol.version)
          else if
            not
              (Auth.equal
                 (Option.value t.config.auth_token ~default:"")
                 h.Protocol.token)
          then deny "bad auth token"
          else (
            match
              Protocol.write_frame ~net:t.config.net fd
                (Protocol.encode_hello_reply Protocol.Hello_ok)
            with
            | () -> Some h.Protocol.peer
            | exception (Unix.Unix_error _ | Sys_error _ | Net_io.Injected _)
              ->
                None))

let handle_conn t kind fd =
  let admitted =
    match kind with
    (* the Unix socket is the local trusted path: same-host clients
       keep working unchanged, with no handshake and no forwarding
       restrictions *)
    | L_unix -> Some false
    | L_tcp -> handshake t fd
  in
  match admitted with
  | None -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | Some from_peer ->
      (* the receive timeout turns an idle connection into a periodic
         stopping-flag check, so shutdown never waits on a silent
         client; the send timeout bounds how long a reply may block on
         a client that stopped draining *)
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.5
       with Unix.Unix_error _ -> ());
      (try
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO
           (Float.max 0.05 t.config.io_timeout_s)
       with Unix.Unix_error _ -> ());
      (* the admission key: peers pool under one weighted backlog;
         every local connection gets its own, so DRR fairness is
         per-connection *)
      let client =
        if from_peer then "peer"
        else
          locked t.mu (fun () ->
              t.conn_counter <- t.conn_counter + 1;
              Printf.sprintf "c%d" t.conn_counter)
      in
      let emit resp = send_response t fd resp in
      let rec loop () =
        match Protocol.read_frame ~net:t.config.net fd with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            if locked t.mu (fun () -> t.stopped) then () else loop ()
        | exception (Unix.Unix_error _ | Sys_error _) -> ()
        | exception Net_io.Injected _ ->
            (* an injected connection fault ends this connection, like
               the real reset it stands in for — never the daemon *)
            ()
        | Error `Eof -> ()
        | Error (`Bad msg) ->
            (* framing is broken: answer once, then drop the connection —
               resynchronising on a corrupt stream is guesswork *)
            ignore (send_response t fd (Protocol.Error_r ("bad frame: " ^ msg)))
        | Ok payload -> (
            match dispatch t ~from_peer ~client ~emit payload with
            | None, _ ->
                (* the stream desynced mid-flight (emit failed): the
                   connection is poisoned, drop it without a final frame *)
                ()
            | Some resp, close_after ->
                let sent = send_response t fd resp in
                if sent && not close_after then loop ())
      in
      (try loop ()
       with e ->
         Log.warn (fun m ->
             m "connection handler died: %s" (Printexc.to_string e)));
      (try Unix.close fd with Unix.Unix_error _ -> ())

let serve t =
  List.iter
    (fun (kind, fd) ->
      match kind with
      | L_unix ->
          Log.info (fun m ->
              m "amosd listening on %s"
                (Option.value t.config.socket_path ~default:"?"))
      | L_tcp ->
          Log.info (fun m ->
              m "amosd listening on tcp port %d"
                (Option.value (Transport.bound_port fd) ~default:0)))
    t.listeners;
  let listen_fds = List.map snd t.listeners in
  let kind_of lfd =
    match
      List.find_map
        (fun (kind, fd) -> if fd = lfd then Some kind else None)
        t.listeners
    with
    | Some kind -> kind
    | None -> L_unix
  in
  let idle_ticks = ref 0 in
  let rec loop () =
    if locked t.mu (fun () -> t.stopped) then ()
    else begin
      (match Unix.select listen_fds [] [] 0.25 with
      | [], _, _ ->
          (* idle tick: every couple of seconds of quiet, spend one
             pool slot re-tuning a quarantined fingerprint *)
          incr idle_ticks;
          if !idle_ticks mod 8 = 0 then ignore (drain_quarantined_once t)
      | ready, _, _ ->
          List.iter
            (fun lfd ->
              match Unix.accept ~cloexec:true lfd with
              | fd, _ ->
                  let kind = kind_of lfd in
                  let th = Thread.create (fun () -> handle_conn t kind fd) () in
                  locked t.mu (fun () -> t.threads <- th :: t.threads)
              | exception Unix.Unix_error _ -> ())
            ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  List.iter
    (fun (_, fd) -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  (match t.config.socket_path with
  | None -> ()
  | Some path -> (
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()));
  let threads = locked t.mu (fun () -> t.threads) in
  List.iter (fun th -> try Thread.join th with _ -> ()) threads;
  Log.info (fun m -> m "amosd stopped")
