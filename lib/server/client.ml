type t = { fd : Unix.file_descr; mutable closed : bool }

let connect ?(timeout_s = 30.) ?(attempts = 1) socket_path =
  let rec go n =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () ->
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s
         with Unix.Unix_error _ -> ());
        { fd; closed = false }
    | exception (Unix.Unix_error _ as e) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if n <= 1 then raise e
        else begin
          ignore (Unix.select [] [] [] 0.1);
          go (n - 1)
        end
  in
  go (max 1 attempts)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_conn ?timeout_s ?attempts socket_path f =
  let t = connect ?timeout_s ?attempts socket_path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let request t req =
  if t.closed then Error "connection closed"
  else
    match
      Protocol.write_frame t.fd (Protocol.encode_request req);
      Protocol.read_frame t.fd
    with
    | Ok payload -> Protocol.decode_response payload
    | Error `Eof -> Error "server closed the connection"
    | Error (`Bad msg) -> Error ("bad response frame: " ^ msg)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error "request timed out"
    | exception Unix.Unix_error (e, _, _) ->
        Error ("transport error: " ^ Unix.error_message e)

let request_retry ?(attempts = 5) t req =
  let rec go n =
    match request t req with
    | Ok (Protocol.Busy_r { retry_after_s }) as r ->
        if n <= 1 then r
        else begin
          ignore (Unix.select [] [] [] (Float.max 0.01 retry_after_s));
          go (n - 1)
        end
    | r -> r
  in
  go (max 1 attempts)
