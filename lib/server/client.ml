type t = { fd : Unix.file_descr; mutable closed : bool }

exception Denied of string

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* TCP requires the hello exchange before the first request; a typed
   denial (bad token, version skew) surfaces as [Denied], transport
   trouble and garbage replies as [Failure] *)
let do_handshake fd ~token ~peer =
  Protocol.write_frame fd
    (Protocol.encode_hello
       { Protocol.hello_version = Protocol.version; token; peer });
  match Protocol.read_frame fd with
  | Ok payload -> (
      match Protocol.decode_hello_reply payload with
      | Ok Protocol.Hello_ok -> ()
      | Ok (Protocol.Hello_denied reason) -> raise (Denied reason)
      | Error msg -> failwith ("bad hello reply: " ^ msg))
  | Error `Eof -> failwith "server closed the connection during handshake"
  | Error (`Bad msg) -> failwith ("bad hello reply frame: " ^ msg)

let connect_endpoint ?(timeout_s = 30.) ?(attempts = 1) ?(token = "")
    ?(peer = false) endpoint =
  let rec go n =
    match Transport.connect ~timeout_s endpoint with
    | fd -> (
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s
         with Unix.Unix_error _ -> ());
        let t = { fd; closed = false } in
        match endpoint with
        | Transport.Unix_path _ -> t
        | Transport.Tcp _ -> (
            match do_handshake fd ~token ~peer with
            | () -> t
            | exception e ->
                close t;
                raise e))
    | exception (Unix.Unix_error _ as e) ->
        if n <= 1 then raise e
        else begin
          ignore (Unix.select [] [] [] 0.1);
          go (n - 1)
        end
  in
  go (max 1 attempts)

let connect ?timeout_s ?attempts socket_path =
  connect_endpoint ?timeout_s ?attempts (Transport.Unix_path socket_path)

let with_endpoint ?timeout_s ?attempts ?token ?peer endpoint f =
  let t = connect_endpoint ?timeout_s ?attempts ?token ?peer endpoint in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let with_conn ?timeout_s ?attempts socket_path f =
  with_endpoint ?timeout_s ?attempts (Transport.Unix_path socket_path) f

let request t req =
  if t.closed then Error "connection closed"
  else
    match
      Protocol.write_frame t.fd (Protocol.encode_request req);
      Protocol.read_frame t.fd
    with
    | Ok payload -> Protocol.decode_response payload
    | Error `Eof -> Error "server closed the connection"
    | Error (`Bad msg) -> Error ("bad response frame: " ^ msg)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error "request timed out"
    | exception Unix.Unix_error (e, _, _) ->
        Error ("transport error: " ^ Unix.error_message e)

let request_retry ?(attempts = 5) t req =
  let rec go n =
    match request t req with
    | Ok (Protocol.Busy_r { retry_after_s }) as r ->
        if n <= 1 then r
        else begin
          ignore (Unix.select [] [] [] (Float.max 0.01 retry_after_s));
          go (n - 1)
        end
    | r -> r
  in
  go (max 1 attempts)
