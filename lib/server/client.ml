type t = {
  fd : Unix.file_descr;
  net : Net_io.t;
  mutable closed : bool;
  mutable poisoned : string option;
}

exception Denied of string

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* TCP requires the hello exchange before the first request; a typed
   denial (bad token, version skew) surfaces as [Denied], transport
   trouble and garbage replies as [Failure] *)
let do_handshake ~net fd ~token ~peer =
  Protocol.write_frame ~net fd
    (Protocol.encode_hello
       { Protocol.hello_version = Protocol.version; token; peer });
  match Protocol.read_frame ~net fd with
  | Ok payload -> (
      match Protocol.decode_hello_reply payload with
      | Ok Protocol.Hello_ok -> ()
      | Ok (Protocol.Hello_denied reason) -> raise (Denied reason)
      | Error msg -> failwith ("bad hello reply: " ^ msg))
  | Error `Eof -> failwith "server closed the connection during handshake"
  | Error (`Bad msg) -> failwith ("bad hello reply frame: " ^ msg)

let connect_endpoint ?(net = Net_io.default) ?(timeout_s = 30.)
    ?(attempts = 1) ?(token = "") ?(peer = false) endpoint =
  let rec go n =
    match Transport.connect ~net ~timeout_s endpoint with
    | fd -> (
        (* both directions carry the deadline: without SO_SNDTIMEO a
           peer that stops draining its receive buffer would park
           [write_frame] forever, defeating the timeout entirely *)
        (try
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
           Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
         with Unix.Unix_error _ -> ());
        let t = { fd; net; closed = false; poisoned = None } in
        match endpoint with
        | Transport.Unix_path _ -> t
        | Transport.Tcp _ -> (
            match do_handshake ~net fd ~token ~peer with
            | () -> t
            | exception e ->
                close t;
                raise e))
    | exception (Unix.Unix_error _ as e) ->
        if n <= 1 then raise e
        else begin
          ignore (Unix.select [] [] [] 0.1);
          go (n - 1)
        end
  in
  go (max 1 attempts)

let connect ?timeout_s ?attempts socket_path =
  connect_endpoint ?timeout_s ?attempts (Transport.Unix_path socket_path)

let with_endpoint ?net ?timeout_s ?attempts ?token ?peer endpoint f =
  let t = connect_endpoint ?net ?timeout_s ?attempts ?token ?peer endpoint in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let with_conn ?timeout_s ?attempts socket_path f =
  with_endpoint ?timeout_s ?attempts (Transport.Unix_path socket_path) f

(* a frame stream that desynced (timeout mid-read, reset, bad frame)
   can never be trusted again: the next reply on it could be the tail
   of the previous one.  Poison the connection so every later request
   gets a typed refusal instead of garbage. *)
let poison t reason =
  t.poisoned <- Some reason;
  Error ("connection poisoned: " ^ reason)

let request ?deadline_ms t req =
  if t.closed then Error "connection closed"
  else
    match t.poisoned with
    | Some reason -> Error ("connection poisoned: " ^ reason)
    | None -> (
        match
          Protocol.write_frame ~net:t.net t.fd
            (Protocol.encode_request ?deadline_ms req);
          Protocol.read_frame ~net:t.net t.fd
        with
        | Ok payload -> Protocol.decode_response payload
        | Error `Eof -> poison t "server closed the connection"
        | Error (`Bad msg) -> poison t ("bad response frame: " ^ msg)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            poison t "request timed out"
        | exception Unix.Unix_error (e, _, _) ->
            poison t ("transport error: " ^ Unix.error_message e)
        | exception Net_io.Injected msg ->
            poison t ("transport error: " ^ msg))

(* Streaming is the same exchange with interleaved [Progress_r] frames
   before the final reply; the final frame is whatever a non-streaming
   request would have returned (plus [Cancelled_r]).  The same poison
   discipline applies: any desync mid-stream condemns the connection. *)
let request_stream ?deadline_ms ?request_id ~on_progress t req =
  if t.closed then Error "connection closed"
  else
    match t.poisoned with
    | Some reason -> Error ("connection poisoned: " ^ reason)
    | None -> (
        let rec drain () =
          match Protocol.read_frame ~net:t.net t.fd with
          | Ok payload -> (
              match Protocol.decode_response payload with
              | Ok (Protocol.Progress_r p) ->
                  on_progress p;
                  drain ()
              | r -> r)
          | Error `Eof -> poison t "server closed the connection"
          | Error (`Bad msg) -> poison t ("bad response frame: " ^ msg)
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              (* a signal (e.g. Ctrl-C whose handler just sent a cancel)
                 interrupted the read between frames: keep draining — the
                 terminal frame is still coming.  An interrupt *inside* a
                 frame resurfaces as a bad-frame poison on the retry. *)
              drain ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              poison t "request timed out"
          | exception Unix.Unix_error (e, _, _) ->
              poison t ("transport error: " ^ Unix.error_message e)
          | exception Net_io.Injected msg ->
              poison t ("transport error: " ^ msg)
        in
        match
          Protocol.write_frame ~net:t.net t.fd
            (Protocol.encode_request ?deadline_ms ?request_id
               ~accept_stream:true req)
        with
        | () -> drain ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            poison t "request timed out"
        | exception Unix.Unix_error (e, _, _) ->
            poison t ("transport error: " ^ Unix.error_message e)
        | exception Net_io.Injected msg -> poison t ("transport error: " ^ msg)
        )

let cancel t ~request_id = request t (Protocol.Cancel { request_id })

let poisoned t = t.poisoned

let request_retry ?(attempts = 5) ?deadline_ms t req =
  let rec go n =
    match request ?deadline_ms t req with
    | Ok (Protocol.Busy_r { retry_after_s }) as r ->
        if n <= 1 then r
        else begin
          ignore (Unix.select [] [] [] (Float.max 0.01 retry_after_s));
          go (n - 1)
        end
    | r -> r
  in
  go (max 1 attempts)
