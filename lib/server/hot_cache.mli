(** Scored hot front cache for the daemon.

    The in-process layer in front of the persistent {!Plan_cache}:
    already-encoded wire plans served without touching disk.  Entries
    carry the cache economy's value accounting
    ({!Amos_service.Retain.item}) and eviction removes the lowest
    {!Amos_service.Retain.score} first — a burst of cheap lookups
    cannot flush the plans that were expensive to tune, which the PR-4
    FIFO allowed.

    Admission dedups on fingerprint: re-admitting updates the entry in
    place and never double-counts its bytes.

    Not thread-safe — the server serializes access under its own state
    mutex. *)

open Amos_service

type 'a t

val create : ?max_bytes:int -> capacity:int -> clock:Clock.t -> unit -> 'a t
(** [capacity] bounds the entry count (minimum 1); [max_bytes] (default
    unbounded) additionally budgets the bytes held.  [clock] supplies
    access stamps for the age decay. *)

val find : 'a t -> string -> 'a option
(** A hit stamps the entry's last access from the clock. *)

val mem : 'a t -> string -> bool

val put : 'a t -> string -> 'a -> bytes:int -> tuning_seconds:float -> unit
(** Admit (or refresh, in place) and then evict lowest-scoring entries
    while over capacity or over the byte budget.  At least one entry is
    always retained, even when it alone exceeds [max_bytes] — the hot
    layer is a cache of last resort, not a correctness gate. *)

val size : 'a t -> int
val bytes : 'a t -> int
(** Accounted bytes currently held. *)

val tuning_seconds : 'a t -> float
(** Total tuning seconds the hot layer currently protects. *)

val evictions : 'a t -> int
val clear : 'a t -> unit
