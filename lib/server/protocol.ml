module Fingerprint = Amos_service.Fingerprint

let version = 1
let max_frame_bytes = 4 * 1024 * 1024

type op_spec =
  | Layer of string
  | Kind of { kind : string; batch : int; index : int }
  | Dsl_text of string

type request =
  | Health
  | Stats
  | Shutdown
  | Lookup of { accel : string; op : op_spec; budget : Fingerprint.budget }
  | Tune of { accel : string; op : op_spec; budget : Fingerprint.budget }
  | Migrate_tune of {
      accel : string;
      op : op_spec;
      budget : Fingerprint.budget;
    }
  | Compile of {
      accel : string;
      network : string;
      batch : int;
      budget : Fingerprint.budget;
      jobs : int;
    }
  | Cancel of { request_id : int }

(* What a sender attached to the request beyond the request itself.
   Every field is optional on the wire and absent by default, so a
   pre-streaming decoder (which looks fields up by name) never sees
   them and a pre-streaming encoder produces byte-identical frames. *)
type envelope = {
  env_deadline_ms : int option;
  env_request_id : int option;
  env_accept_stream : bool;
}

let empty_envelope =
  { env_deadline_ms = None; env_request_id = None; env_accept_stream = false }

type hello = { hello_version : int; token : string; peer : bool }
type hello_reply = Hello_ok | Hello_denied of string

type plan_wire = Wire_scalar | Wire_spatial of string

type tune_reply = {
  fingerprint : string;
  plan : plan_wire;
  source : string;
  evaluations : int;
  tuning_seconds : float;
}

type server_stats = {
  uptime_s : float;
  requests : int;
  tunes : int;
  deduped : int;
  hot_hits : int;
  cache_hits : int;
  busy_rejections : int;
  in_flight : int;
  queue_load : int;
  hot_bytes : int;
  hot_tuning_seconds : float;
  cache_bytes : int;
  quarantine_retunes : int;
  forwarded : int;
  peer_hits : int;
  peer_fallbacks : int;
  budget_fallbacks : int;
  auth_rejections : int;
  deadline_rejections : int;
  cancels : int;
}

type compile_reply = {
  network : string;
  total_ops : int;
  mapped_ops : int;
  network_seconds : float;
  stages : int;
  comp_cache_hits : int;
  comp_tuned : int;
}

(* One streamed progress frame: the state of an in-flight exploration.
   Latencies are [None] until the search has anything to report (the
   wire cannot carry an IEEE infinity). *)
type progress_body = {
  pg_generation : int;
  pg_best_predicted : float option;
  pg_best_measured : float option;
  pg_evaluations : int;
}

type response =
  | Ok_r of string
  | Plan_r of tune_reply
  | Not_found_r
  | Stats_r of server_stats
  | Compiled_r of compile_reply
  | Busy_r of { retry_after_s : float }
  | Error_r of string
  | Progress_r of progress_body
  | Cancelled_r
  | Deadline_hint_r of { projected_wait_s : float }

(* --- JSON encoding ------------------------------------------------- *)

let ( let* ) = Result.bind

let json_of_budget (b : Fingerprint.budget) =
  Json.Obj
    [
      ("population", Json.Int b.Fingerprint.population);
      ("generations", Json.Int b.Fingerprint.generations);
      ("measure_top", Json.Int b.Fingerprint.measure_top);
      ("seed", Json.Int b.Fingerprint.seed);
    ]

let json_of_op = function
  | Layer label -> Json.Obj [ ("spec", Json.String "layer"); ("label", Json.String label) ]
  | Kind { kind; batch; index } ->
      Json.Obj
        [
          ("spec", Json.String "kind");
          ("kind", Json.String kind);
          ("batch", Json.Int batch);
          ("index", Json.Int index);
        ]
  | Dsl_text text ->
      Json.Obj [ ("spec", Json.String "dsl"); ("text", Json.String text) ]

let versioned ty fields =
  Json.Obj (("v", Json.Int version) :: ("type", Json.String ty) :: fields)

let json_of_request = function
  | Health -> versioned "health" []
  | Stats -> versioned "stats" []
  | Shutdown -> versioned "shutdown" []
  | Lookup { accel; op; budget } ->
      versioned "lookup"
        [
          ("accel", Json.String accel);
          ("op", json_of_op op);
          ("budget", json_of_budget budget);
        ]
  | Tune { accel; op; budget } ->
      versioned "tune"
        [
          ("accel", Json.String accel);
          ("op", json_of_op op);
          ("budget", json_of_budget budget);
        ]
  | Migrate_tune { accel; op; budget } ->
      versioned "migrate_tune"
        [
          ("accel", Json.String accel);
          ("op", json_of_op op);
          ("budget", json_of_budget budget);
        ]
  | Compile { accel; network; batch; budget; jobs } ->
      versioned "compile"
        [
          ("accel", Json.String accel);
          ("network", Json.String network);
          ("batch", Json.Int batch);
          ("budget", json_of_budget budget);
          ("jobs", Json.Int jobs);
        ]
  | Cancel { request_id } ->
      (* the wire key is "id", not "request_id": the latter is an
         envelope field (the id a streaming request registers under) and
         the flat frame object cannot carry both meanings at once *)
      versioned "cancel" [ ("id", Json.Int request_id) ]

let json_of_plan = function
  | Wire_scalar -> Json.Obj [ ("kind", Json.String "scalar") ]
  | Wire_spatial text ->
      Json.Obj [ ("kind", Json.String "spatial"); ("text", Json.String text) ]

let json_of_response = function
  | Ok_r info -> versioned "ok" [ ("info", Json.String info) ]
  | Plan_r r ->
      versioned "plan"
        [
          ("fingerprint", Json.String r.fingerprint);
          ("plan", json_of_plan r.plan);
          ("source", Json.String r.source);
          ("evaluations", Json.Int r.evaluations);
          ("tuning_seconds", Json.Float r.tuning_seconds);
        ]
  | Not_found_r -> versioned "not_found" []
  | Stats_r s ->
      versioned "stats"
        [
          ("uptime_s", Json.Float s.uptime_s);
          ("requests", Json.Int s.requests);
          ("tunes", Json.Int s.tunes);
          ("deduped", Json.Int s.deduped);
          ("hot_hits", Json.Int s.hot_hits);
          ("cache_hits", Json.Int s.cache_hits);
          ("busy_rejections", Json.Int s.busy_rejections);
          ("in_flight", Json.Int s.in_flight);
          ("queue_load", Json.Int s.queue_load);
          ("hot_bytes", Json.Int s.hot_bytes);
          ("hot_tuning_seconds", Json.Float s.hot_tuning_seconds);
          ("cache_bytes", Json.Int s.cache_bytes);
          ("quarantine_retunes", Json.Int s.quarantine_retunes);
          ("forwarded", Json.Int s.forwarded);
          ("peer_hits", Json.Int s.peer_hits);
          ("peer_fallbacks", Json.Int s.peer_fallbacks);
          ("budget_fallbacks", Json.Int s.budget_fallbacks);
          ("auth_rejections", Json.Int s.auth_rejections);
          ("deadline_rejections", Json.Int s.deadline_rejections);
          ("cancels", Json.Int s.cancels);
        ]
  | Compiled_r c ->
      versioned "compiled"
        [
          ("network", Json.String c.network);
          ("total_ops", Json.Int c.total_ops);
          ("mapped_ops", Json.Int c.mapped_ops);
          ("network_seconds", Json.Float c.network_seconds);
          ("stages", Json.Int c.stages);
          ("cache_hits", Json.Int c.comp_cache_hits);
          ("tuned", Json.Int c.comp_tuned);
        ]
  | Busy_r { retry_after_s } ->
      versioned "busy" [ ("retry_after_s", Json.Float retry_after_s) ]
  | Error_r msg -> versioned "error" [ ("message", Json.String msg) ]
  | Progress_r p ->
      (* unknown latencies are omitted, not encoded: the JSON writer
         would turn an infinity into [null] and the decoder would
         reject the frame *)
      let latency name v =
        match v with None -> [] | Some f -> [ (name, Json.Float f) ]
      in
      versioned "progress"
        ([ ("generation", Json.Int p.pg_generation) ]
        @ latency "best_predicted_s" p.pg_best_predicted
        @ latency "best_measured_s" p.pg_best_measured
        @ [ ("evaluations", Json.Int p.pg_evaluations) ])
  | Cancelled_r -> versioned "cancelled" []
  | Deadline_hint_r { projected_wait_s } ->
      versioned "deadline_hint"
        [ ("projected_wait_s", Json.Float projected_wait_s) ]

(* --- JSON decoding ------------------------------------------------- *)

let field name = function
  | Json.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" name))
  | _ -> Error "expected a JSON object"

let as_string = function
  | Json.String s -> Ok s
  | _ -> Error "expected a string"

let as_int = function Json.Int i -> Ok i | _ -> Error "expected an integer"

let as_float = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error "expected a number"

let str_field name j =
  let* v = field name j in
  as_string v

let int_field name j =
  let* v = field name j in
  as_int v

let float_field name j =
  let* v = field name j in
  as_float v

(* cache-economy stats fields decode with a default when absent, so a
   client and daemon from either side of that change interoperate
   without a version bump *)
let int_field_default name ~default j =
  match field name j with Error _ -> Ok default | Ok v -> as_int v

let float_field_default name ~default j =
  match field name j with Error _ -> Ok default | Ok v -> as_float v

let budget_of_json j =
  let* population = int_field "population" j in
  let* generations = int_field "generations" j in
  let* measure_top = int_field "measure_top" j in
  let* seed = int_field "seed" j in
  Ok { Fingerprint.population; generations; measure_top; seed }

let op_of_json j =
  let* spec = str_field "spec" j in
  match spec with
  | "layer" ->
      let* label = str_field "label" j in
      Ok (Layer label)
  | "kind" ->
      let* kind = str_field "kind" j in
      let* batch = int_field "batch" j in
      let* index = int_field "index" j in
      Ok (Kind { kind; batch; index })
  | "dsl" ->
      let* text = str_field "text" j in
      Ok (Dsl_text text)
  | s -> Error (Printf.sprintf "unknown op spec %S" s)

let check_version j =
  let* v = int_field "v" j in
  if v = version then Ok ()
  else Error (Printf.sprintf "unsupported protocol version %d (want %d)" v version)

let tune_fields j =
  let* accel = str_field "accel" j in
  let* opj = field "op" j in
  let* op = op_of_json opj in
  let* bj = field "budget" j in
  let* budget = budget_of_json bj in
  Ok (accel, op, budget)

let request_of_json j =
  let* () = check_version j in
  let* ty = str_field "type" j in
  match ty with
  | "health" -> Ok Health
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | "lookup" ->
      let* accel, op, budget = tune_fields j in
      Ok (Lookup { accel; op; budget })
  | "tune" ->
      let* accel, op, budget = tune_fields j in
      Ok (Tune { accel; op; budget })
  | "migrate_tune" ->
      let* accel, op, budget = tune_fields j in
      Ok (Migrate_tune { accel; op; budget })
  | "compile" ->
      let* accel = str_field "accel" j in
      let* network = str_field "network" j in
      let* batch = int_field "batch" j in
      let* bj = field "budget" j in
      let* budget = budget_of_json bj in
      let* jobs = int_field "jobs" j in
      Ok (Compile { accel; network; batch; budget; jobs })
  | "cancel" ->
      let* request_id = int_field "id" j in
      Ok (Cancel { request_id })
  | s -> Error (Printf.sprintf "unknown request type %S" s)

let plan_of_json j =
  let* kind = str_field "kind" j in
  match kind with
  | "scalar" -> Ok Wire_scalar
  | "spatial" ->
      let* text = str_field "text" j in
      Ok (Wire_spatial text)
  | s -> Error (Printf.sprintf "unknown plan kind %S" s)

let response_of_json j =
  let* () = check_version j in
  let* ty = str_field "type" j in
  match ty with
  | "ok" ->
      let* info = str_field "info" j in
      Ok (Ok_r info)
  | "plan" ->
      let* fingerprint = str_field "fingerprint" j in
      let* pj = field "plan" j in
      let* plan = plan_of_json pj in
      let* source = str_field "source" j in
      let* evaluations = int_field "evaluations" j in
      let* tuning_seconds = float_field "tuning_seconds" j in
      Ok (Plan_r { fingerprint; plan; source; evaluations; tuning_seconds })
  | "not_found" -> Ok Not_found_r
  | "stats" ->
      let* uptime_s = float_field "uptime_s" j in
      let* requests = int_field "requests" j in
      let* tunes = int_field "tunes" j in
      let* deduped = int_field "deduped" j in
      let* hot_hits = int_field "hot_hits" j in
      let* cache_hits = int_field "cache_hits" j in
      let* busy_rejections = int_field "busy_rejections" j in
      let* in_flight = int_field "in_flight" j in
      let* queue_load = int_field "queue_load" j in
      let* hot_bytes = int_field_default "hot_bytes" ~default:0 j in
      let* hot_tuning_seconds =
        float_field_default "hot_tuning_seconds" ~default:0. j
      in
      let* cache_bytes = int_field_default "cache_bytes" ~default:0 j in
      let* quarantine_retunes =
        int_field_default "quarantine_retunes" ~default:0 j
      in
      let* forwarded = int_field_default "forwarded" ~default:0 j in
      let* peer_hits = int_field_default "peer_hits" ~default:0 j in
      let* peer_fallbacks = int_field_default "peer_fallbacks" ~default:0 j in
      let* budget_fallbacks =
        int_field_default "budget_fallbacks" ~default:0 j
      in
      let* auth_rejections = int_field_default "auth_rejections" ~default:0 j in
      let* deadline_rejections =
        int_field_default "deadline_rejections" ~default:0 j
      in
      let* cancels = int_field_default "cancels" ~default:0 j in
      Ok
        (Stats_r
           {
             uptime_s;
             requests;
             tunes;
             deduped;
             hot_hits;
             cache_hits;
             busy_rejections;
             in_flight;
             queue_load;
             hot_bytes;
             hot_tuning_seconds;
             cache_bytes;
             quarantine_retunes;
             forwarded;
             peer_hits;
             peer_fallbacks;
             budget_fallbacks;
             auth_rejections;
             deadline_rejections;
             cancels;
           })
  | "compiled" ->
      let* network = str_field "network" j in
      let* total_ops = int_field "total_ops" j in
      let* mapped_ops = int_field "mapped_ops" j in
      let* network_seconds = float_field "network_seconds" j in
      let* stages = int_field "stages" j in
      let* comp_cache_hits = int_field "cache_hits" j in
      let* comp_tuned = int_field "tuned" j in
      Ok
        (Compiled_r
           {
             network;
             total_ops;
             mapped_ops;
             network_seconds;
             stages;
             comp_cache_hits;
             comp_tuned;
           })
  | "busy" ->
      let* retry_after_s = float_field "retry_after_s" j in
      Ok (Busy_r { retry_after_s })
  | "error" ->
      let* message = str_field "message" j in
      Ok (Error_r message)
  | "progress" ->
      let latency name =
        match field name j with
        | Error _ -> Ok None
        | Ok v ->
            let* f = as_float v in
            Ok (Some f)
      in
      let* pg_generation = int_field "generation" j in
      let* pg_best_predicted = latency "best_predicted_s" in
      let* pg_best_measured = latency "best_measured_s" in
      let* pg_evaluations = int_field "evaluations" j in
      Ok
        (Progress_r
           { pg_generation; pg_best_predicted; pg_best_measured; pg_evaluations })
  | "cancelled" -> Ok Cancelled_r
  | "deadline_hint" ->
      let* projected_wait_s = float_field "projected_wait_s" j in
      Ok (Deadline_hint_r { projected_wait_s })
  | s -> Error (Printf.sprintf "unknown response type %S" s)

(* --- handshake ------------------------------------------------------ *)

let encode_hello h =
  Json.to_string
    (Json.Obj
       [
         ("v", Json.Int h.hello_version);
         ("type", Json.String "hello");
         ("token", Json.String h.token);
         ("origin", Json.String (if h.peer then "peer" else "client"));
       ])

(* The version travels back as data rather than being rejected at the
   codec: the server wants to answer a future client with a typed
   [Hello_denied "unsupported protocol version ..."], which it can only
   do after seeing what version was claimed. *)
let decode_hello s =
  let* j = Json.of_string s in
  let* ty = str_field "type" j in
  if ty <> "hello" then
    Error (Printf.sprintf "expected a hello frame, got %S" ty)
  else
    let* hello_version = int_field "v" j in
    let* token = str_field "token" j in
    let* origin = str_field "origin" j in
    let* peer =
      match origin with
      | "client" -> Ok false
      | "peer" -> Ok true
      | s -> Error (Printf.sprintf "unknown hello origin %S" s)
    in
    Ok { hello_version; token; peer }

let encode_hello_reply = function
  | Hello_ok -> Json.to_string (versioned "hello_ok" [])
  | Hello_denied reason ->
      Json.to_string
        (versioned "hello_denied" [ ("reason", Json.String reason) ])

let decode_hello_reply s =
  let* j = Json.of_string s in
  let* () = check_version j in
  let* ty = str_field "type" j in
  match ty with
  | "hello_ok" -> Ok Hello_ok
  | "hello_denied" ->
      let* reason = str_field "reason" j in
      Ok (Hello_denied reason)
  | s -> Error (Printf.sprintf "unknown hello reply type %S" s)

(* The deadline, request id and streaming opt-in ride the envelope, not
   the request constructors: they are transport metadata ("how long is
   this answer still worth sending", "call this exchange N", "I can
   read interleaved progress frames"), not part of what is being asked.
   Decoders that predate a field look fields up by name and simply
   never see it; encoders that never set one produce byte-identical
   frames to the pre-streaming protocol. *)
let encode_request ?deadline_ms ?request_id ?(accept_stream = false) r =
  let extras =
    (match deadline_ms with
    | None -> []
    | Some d -> [ ("deadline_ms", Json.Int d) ])
    @ (match request_id with
      | None -> []
      | Some id -> [ ("request_id", Json.Int id) ])
    @ if accept_stream then [ ("accept_stream", Json.Bool true) ] else []
  in
  let j =
    match (json_of_request r, extras) with
    | j, [] -> j
    | Json.Obj fields, extras -> Json.Obj (fields @ extras)
    | j, _ -> j
  in
  Json.to_string j

let encode_response r = Json.to_string (json_of_response r)

let envelope_of_json j =
  let opt_int name =
    match field name j with
    | Error _ -> Ok None
    | Ok v ->
        let* d = as_int v in
        Ok (Some d)
  in
  let* env_deadline_ms = opt_int "deadline_ms" in
  let* env_request_id = opt_int "request_id" in
  let* env_accept_stream =
    match field "accept_stream" j with
    | Error _ -> Ok false
    | Ok (Json.Bool b) -> Ok b
    | Ok _ -> Error "expected a boolean accept_stream"
  in
  Ok { env_deadline_ms; env_request_id; env_accept_stream }

let decode_request s =
  let* j = Json.of_string s in
  let* req = request_of_json j in
  let* env = envelope_of_json j in
  Ok (req, env)

let decode_response s =
  let* j = Json.of_string s in
  response_of_json j

(* --- framing ------------------------------------------------------- *)

let write_all ?(net = Net_io.default) fd s =
  let len = String.length s in
  let bytes = Bytes.of_string s in
  let rec go off =
    if off < len then
      let n = Net_io.write net fd bytes off (len - off) in
      go (off + n)
  in
  go 0

let write_frame ?net fd payload =
  if String.length payload > max_frame_bytes then
    invalid_arg "Protocol.write_frame: payload exceeds max_frame_bytes";
  write_all ?net fd (Printf.sprintf "%d\n%s\n" (String.length payload) payload)

(* one byte at a time for the tiny header line, bulk for the payload *)
let read_byte net fd =
  let b = Bytes.create 1 in
  match Net_io.read net fd b 0 1 with 0 -> None | _ -> Some (Bytes.get b 0)

let read_frame ?(net = Net_io.default) fd =
  (* header: decimal length terminated by '\n'; 8 digits bound any
     length we would accept, so a longer header is rejected early *)
  let rec header acc ndigits first =
    match read_byte net fd with
    | None -> if first then Error `Eof else Error (`Bad "truncated frame header")
    | Some '\n' ->
        if ndigits = 0 then Error (`Bad "empty frame header") else Ok acc
    | Some ('0' .. '9' as c) ->
        if ndigits >= 8 then Error (`Bad "oversized frame header")
        else header ((acc * 10) + (Char.code c - Char.code '0')) (ndigits + 1) false
    | Some c -> Error (`Bad (Printf.sprintf "bad frame header byte %C" c))
  in
  match header 0 0 true with
  | Error _ as e -> e
  | Ok len when len > max_frame_bytes ->
      Error (`Bad (Printf.sprintf "frame of %d bytes exceeds limit" len))
  | Ok len -> (
      let buf = Bytes.create len in
      let rec fill off =
        if off >= len then true
        else
          match Net_io.read net fd buf off (len - off) with
          | 0 -> false
          | n -> fill (off + n)
      in
      if not (fill 0) then Error (`Bad "truncated frame payload")
      else
        match read_byte net fd with
        | Some '\n' -> Ok (Bytes.to_string buf)
        | Some _ -> Error (`Bad "missing frame terminator")
        | None -> Error (`Bad "truncated frame terminator"))
