type ('a, 'p) flight = {
  key : string;
  mutable result : 'a option;
  mutable attached : int;  (* waiters not yet detached *)
  mutable abort : bool;  (* last waiter detached while unresolved *)
  mutable waiters : ('a, 'p) waiter list;
}

and ('a, 'p) waiter = {
  w_flight : ('a, 'p) flight;
  w_queue : 'p Queue.t;  (* progress snapshots pending delivery *)
  w_streaming : bool;
  mutable w_detached : bool;
  mutable w_cancelled : bool;
}

type ('a, 'p) t = {
  mutex : Mutex.t;
  wake : Condition.t;  (* progress published, flight completed, or a
                          waiter cancelled; sleepers re-check theirs *)
  table : (string, ('a, 'p) flight) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    wake = Condition.create ();
    table = Hashtbl.create 16;
  }

let flight w = w.w_flight

let acquire ?(streaming = false) t key =
  Mutex.lock t.mutex;
  let attach f =
    let w =
      {
        w_flight = f;
        w_queue = Queue.create ();
        w_streaming = streaming;
        w_detached = false;
        w_cancelled = false;
      }
    in
    f.attached <- f.attached + 1;
    f.waiters <- w :: f.waiters;
    w
  in
  let r =
    match Hashtbl.find_opt t.table key with
    | Some f ->
        (* fresh interest in a flight whose last waiter walked away
           withdraws the abort request — unless the exploration already
           observed it, in which case the joiner simply collects the
           leader's terminal (busy) result and retries *)
        f.abort <- false;
        `Join (attach f)
    | None ->
        let f =
          { key; result = None; attached = 0; abort = false; waiters = [] }
        in
        Hashtbl.replace t.table key f;
        `Lead (attach f)
  in
  Mutex.unlock t.mutex;
  r

let complete t f v =
  Mutex.lock t.mutex;
  (match f.result with
  | Some _ -> () (* already completed *)
  | None ->
      f.result <- Some v;
      (* waiters hold a reference to [f] itself, so retiring the table
         entry now cannot strand them; it just lets the next request
         for this key start a fresh flight *)
      Hashtbl.remove t.table f.key;
      Condition.broadcast t.wake);
  Mutex.unlock t.mutex

let publish t f p =
  Mutex.lock t.mutex;
  (* delivery is enqueue-only: a waiter drains its own queue from its
     own connection thread, so a dead or slow socket can never block the
     flight (or its co-waiters) here *)
  if f.result = None then begin
    List.iter
      (fun w ->
        if w.w_streaming && (not w.w_detached) && not w.w_cancelled then
          Queue.push p w.w_queue)
      f.waiters;
    Condition.broadcast t.wake
  end;
  Mutex.unlock t.mutex

let next t w =
  Mutex.lock t.mutex;
  let rec loop () =
    if w.w_cancelled then `Cancelled
    else if not (Queue.is_empty w.w_queue) then `Progress (Queue.pop w.w_queue)
    else
      match w.w_flight.result with
      | Some v -> `Done v
      | None ->
          Condition.wait t.wake t.mutex;
          loop ()
  in
  let r = loop () in
  Mutex.unlock t.mutex;
  r

let wait t w =
  Mutex.lock t.mutex;
  let rec loop () =
    if w.w_cancelled then `Cancelled
    else
      match w.w_flight.result with
      | Some v -> `Done v
      | None ->
          Condition.wait t.wake t.mutex;
          loop ()
  in
  let r = loop () in
  Mutex.unlock t.mutex;
  r

let cancel t w =
  Mutex.lock t.mutex;
  if (not w.w_detached) && not w.w_cancelled then begin
    w.w_cancelled <- true;
    Condition.broadcast t.wake
  end;
  Mutex.unlock t.mutex

let detach t w =
  Mutex.lock t.mutex;
  let remaining =
    if w.w_detached then w.w_flight.attached
    else begin
      w.w_detached <- true;
      w.w_flight.attached <- w.w_flight.attached - 1;
      w.w_flight.waiters <-
        List.filter (fun x -> x != w) w.w_flight.waiters;
      if w.w_flight.attached <= 0 && w.w_flight.result = None then
        w.w_flight.abort <- true;
      w.w_flight.attached
    end
  in
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  remaining

(* Lock-free single-word read: the exploration polls this once per
   genetic generation.  The only writers flip it under the table mutex,
   and a stale [false] just delays the abort by one generation. *)
let abort_requested f = f.abort

let in_flight t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n
