type 'a flight = { key : string; mutable result : 'a option }

type 'a t = {
  mutex : Mutex.t;
  done_ : Condition.t;  (* some flight completed; waiters re-check theirs *)
  table : (string, 'a flight) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    done_ = Condition.create ();
    table = Hashtbl.create 16;
  }

let acquire t key =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some f -> `Join f
    | None ->
        let f = { key; result = None } in
        Hashtbl.replace t.table key f;
        `Lead f
  in
  Mutex.unlock t.mutex;
  r

let complete t f v =
  Mutex.lock t.mutex;
  (match f.result with
  | Some _ -> () (* already completed *)
  | None ->
      f.result <- Some v;
      (* joiners hold a reference to [f] itself, so retiring the table
         entry now cannot strand them; it just lets the next request
         for this key start a fresh flight *)
      Hashtbl.remove t.table f.key;
      Condition.broadcast t.done_);
  Mutex.unlock t.mutex

let wait t f =
  Mutex.lock t.mutex;
  let rec loop () =
    match f.result with
    | Some v -> v
    | None ->
        Condition.wait t.done_ t.mutex;
        loop ()
  in
  let v = loop () in
  Mutex.unlock t.mutex;
  v

let in_flight t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n
