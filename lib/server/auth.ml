(* Constant-time comparison: every byte of both strings is always
   inspected, so the time taken leaks neither the position of the first
   mismatch nor anything about the expected token beyond its length. *)
let equal a b =
  let la = String.length a and lb = String.length b in
  let n = max la lb in
  let acc = ref (la lxor lb) in
  for i = 0 to n - 1 do
    let ca = if i < la then Char.code (String.unsafe_get a i) else 0 in
    let cb = if i < lb then Char.code (String.unsafe_get b i) else 0 in
    acc := !acc lor (ca lxor cb)
  done;
  !acc = 0
