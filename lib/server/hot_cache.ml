(* Scored hot front cache for the daemon.

   Replaces the PR-4 FIFO: entries carry the same value accounting as
   the persistent cache ({!Amos_service.Retain.item}) and eviction
   removes the lowest retention score first, so a burst of cheap
   lookups cannot flush the plans that were expensive to tune.  Admits
   dedup on fingerprint — re-admitting an entry updates it in place and
   never double-counts its bytes (the FIFO's order queue could hold the
   same fingerprint twice).

   Not thread-safe: the server already serializes hot-cache access
   under its state mutex, and tests drive it single-threaded with a
   virtual clock. *)

open Amos_service

type 'a slot = {
  value : 'a;
  item : Retain.item;
}

type 'a t = {
  clock : Clock.t;
  capacity : int;
  max_bytes : int option;
  slots : (string, 'a slot) Hashtbl.t;
  mutable evictions : int;
}

let create ?max_bytes ~capacity ~clock () =
  {
    clock;
    capacity = max 1 capacity;
    max_bytes;
    slots = Hashtbl.create 64;
    evictions = 0;
  }

let size t = Hashtbl.length t.slots

let bytes t =
  Hashtbl.fold (fun _ s acc -> acc + s.item.Retain.bytes) t.slots 0

let tuning_seconds t =
  Hashtbl.fold (fun _ s acc -> acc +. s.item.Retain.tuning_seconds) t.slots 0.

let evictions t = t.evictions

let find t fp =
  match Hashtbl.find_opt t.slots fp with
  | Some s ->
      s.item.Retain.last_access <- Clock.now t.clock;
      Some s.value
  | None -> None

let mem t fp = Hashtbl.mem t.slots fp

let over_budget t =
  Hashtbl.length t.slots > t.capacity
  ||
  match t.max_bytes with Some b -> bytes t > b | None -> false

let evict_lowest t =
  let now = Clock.now t.clock in
  let victim =
    Hashtbl.fold
      (fun fp s acc ->
        let score = Retain.score ~now s.item in
        match acc with
        | Some (bfp, best) when best < score || (best = score && bfp <= fp) ->
            acc
        | _ -> Some (fp, score))
      t.slots None
  in
  match victim with
  | Some (vfp, _) ->
      Hashtbl.remove t.slots vfp;
      t.evictions <- t.evictions + 1;
      true
  | None -> false

let put t fp value ~bytes:b ~tuning_seconds:ts =
  let now = Clock.now t.clock in
  (match Hashtbl.find_opt t.slots fp with
  | Some s ->
      (* re-admit: refresh in place — never a second accounting of the
         same fingerprint *)
      s.item.Retain.bytes <- b;
      s.item.Retain.tuning_seconds <- ts;
      s.item.Retain.last_access <- now;
      Hashtbl.replace t.slots fp { s with value }
  | None ->
      Hashtbl.replace t.slots fp
        {
          value;
          item =
            { Retain.bytes = b; tuning_seconds = ts; last_access = now };
        });
  while over_budget t && Hashtbl.length t.slots > 1 && evict_lowest t do
    ()
  done

let clear t =
  Hashtbl.reset t.slots;
  t.evictions <- 0
