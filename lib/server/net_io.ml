type op = Connect | Read | Write

type mode =
  | Fail of string
  | Reset
  | Timeout
  | Stall of float
  | Short of int
  | Corrupt

type fault = { op : op; after : int; mode : mode }

exception Injected of string

(* chaos draws must be deterministic and private: the global [Random]
   state belongs to the tests and the tuner *)
type chaos_state = {
  mutable lcg : int64;
  chaos_rate : float;
  chaos_classes : mode array;
  mutable next_class : int;
}

type plan = Passthrough | Faults of fault list ref | Chaos of chaos_state

type t = {
  plan : plan;
  counts : (op, int) Hashtbl.t;
  mutable fired : int;
  mu : Mutex.t;  (* connection handlers are threads; counters must agree *)
}

let make plan =
  { plan; counts = Hashtbl.create 4; fired = 0; mu = Mutex.create () }

let real () = make Passthrough
let default = real ()
let faulty faults = make (Faults (ref faults))

let default_chaos_classes stall_s =
  [| Short 3; Stall stall_s; Reset; Corrupt; Timeout |]

let chaos ?(stall_s = 0.05) ?classes ~rate ~seed () =
  let classes =
    match classes with
    | Some (_ :: _ as l) -> Array.of_list l
    | Some [] | None -> default_chaos_classes stall_s
  in
  make
    (Chaos
       {
         lcg = Int64.of_int (seed lxor 0x5deece66);
         chaos_rate = Float.max 0. (Float.min 1. rate);
         chaos_classes = classes;
         next_class = 0;
       })

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let op_count t opk =
  locked t (fun () ->
      match Hashtbl.find_opt t.counts opk with Some c -> c | None -> 0)

let injected t = locked t (fun () -> t.fired)

(* 48-bit LCG (the java.util.Random constants): tiny, portable, and
   deterministic across OCaml versions, unlike [Random.State] *)
let lcg_next st =
  st.lcg <-
    Int64.logand
      (Int64.add (Int64.mul st.lcg 0x5deece66dL) 0xbL)
      0xffff_ffff_ffffL;
  Int64.to_float (Int64.shift_right_logical st.lcg 17) /. 2147483648.

(* count the call and return the armed fault mode, if any; [Faults]
   triggers are one-shot, [Chaos] draws fresh every call *)
let trip t opk =
  locked t (fun () ->
      let c =
        match Hashtbl.find_opt t.counts opk with Some c -> c | None -> 0
      in
      Hashtbl.replace t.counts opk (c + 1);
      let mode =
        match t.plan with
        | Passthrough -> None
        | Faults faults ->
            let rec pick acc = function
              | [] -> None
              | f :: rest when f.op = opk && f.after = c ->
                  faults := List.rev_append acc rest;
                  Some f.mode
              | f :: rest -> pick (f :: acc) rest
            in
            pick [] !faults
        | Chaos st ->
            if lcg_next st < st.chaos_rate then begin
              let k = st.next_class in
              st.next_class <- (k + 1) mod Array.length st.chaos_classes;
              Some st.chaos_classes.(k)
            end
            else None
      in
      (match mode with Some _ -> t.fired <- t.fired + 1 | None -> ());
      mode)

let reset_exn what = Unix.Unix_error (Unix.ECONNRESET, what, "")
let timeout_exn what = Unix.Unix_error (Unix.EAGAIN, what, "")

(* flip a mid bit of every byte: cheap, never produces the original,
   and reliably breaks both frame headers and JSON payloads *)
let corrupt_bytes buf off len =
  for i = off to off + len - 1 do
    Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 0x15))
  done

let read t fd buf off len =
  match trip t Read with
  | None -> Unix.read fd buf off len
  | Some (Fail msg) -> raise (Injected msg)
  | Some Reset -> raise (reset_exn "read")
  | Some Timeout -> raise (timeout_exn "read")
  | Some (Stall dt) ->
      Unix.sleepf (Float.max 0. dt);
      Unix.read fd buf off len
  | Some (Short n) -> Unix.read fd buf off (max 1 (min len (max 1 n)))
  | Some Corrupt ->
      let n = Unix.read fd buf off len in
      corrupt_bytes buf off n;
      n

let write t fd buf off len =
  match trip t Write with
  | None -> Unix.write fd buf off len
  | Some (Fail msg) -> raise (Injected msg)
  | Some Reset -> raise (reset_exn "write")
  | Some Timeout -> raise (timeout_exn "write")
  | Some (Stall dt) ->
      Unix.sleepf (Float.max 0. dt);
      Unix.write fd buf off len
  | Some (Short n) -> Unix.write fd buf off (max 1 (min len (max 1 n)))
  | Some Corrupt ->
      (* damage a copy: the caller's buffer is not ours to scribble on *)
      let dup = Bytes.sub buf off len in
      corrupt_bytes dup 0 len;
      Unix.write fd dup 0 len

let connect t f =
  match trip t Connect with
  | None -> f ()
  | Some (Fail msg) -> raise (Injected msg)
  | Some (Reset | Corrupt | Short _) ->
      raise (Unix.Unix_error (Unix.ECONNREFUSED, "connect", ""))
  | Some Timeout -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
  | Some (Stall dt) ->
      Unix.sleepf (Float.max 0. dt);
      f ()

(* --- environment ---------------------------------------------------- *)

let bad_spec what s =
  invalid_arg (Printf.sprintf "Net_io.of_env: bad %s %S" what s)

let parse_chaos s =
  let rate = ref None and seed = ref None and stall = ref 0.05 in
  String.split_on_char ',' s
  |> List.iter (fun kv ->
         match String.index_opt kv '=' with
         | None -> bad_spec "AMOS_NET_CHAOS entry" kv
         | Some i -> (
             let k = String.trim (String.sub kv 0 i) in
             let v =
               String.trim (String.sub kv (i + 1) (String.length kv - i - 1))
             in
             match (k, float_of_string_opt v) with
             | "rate", Some f -> rate := Some f
             | "seed", Some f -> seed := Some (int_of_float f)
             | "stall", Some f -> stall := f
             | _ -> bad_spec "AMOS_NET_CHAOS entry" kv));
  match (!rate, !seed) with
  | Some rate, Some seed -> chaos ~stall_s:!stall ~rate ~seed ()
  | _ -> bad_spec "AMOS_NET_CHAOS (need rate= and seed=)" s

let parse_faults s =
  let op_of = function
    | "connect" -> Connect
    | "read" -> Read
    | "write" -> Write
    | o -> bad_spec "op" o
  in
  let fault_of item =
    match String.split_on_char ':' (String.trim item) with
    | [ op; after; "reset" ] ->
        { op = op_of op; after = int_of_string after; mode = Reset }
    | [ op; after; "timeout" ] ->
        { op = op_of op; after = int_of_string after; mode = Timeout }
    | [ op; after; "corrupt" ] ->
        { op = op_of op; after = int_of_string after; mode = Corrupt }
    | [ op; after; "short"; n ] ->
        { op = op_of op; after = int_of_string after; mode = Short (int_of_string n) }
    | [ op; after; "stall"; dt ] ->
        { op = op_of op; after = int_of_string after; mode = Stall (float_of_string dt) }
    | [ op; after; "fail"; msg ] ->
        { op = op_of op; after = int_of_string after; mode = Fail msg }
    | _ -> bad_spec "AMOS_NET_FAULTS entry" item
  in
  match
    String.split_on_char ';' s
    |> List.filter (fun i -> String.trim i <> "")
    |> List.map (fun item ->
           match fault_of item with
           | f -> f
           | exception (Failure _ | Invalid_argument _) ->
               bad_spec "AMOS_NET_FAULTS entry" item)
  with
  | [] -> bad_spec "AMOS_NET_FAULTS (empty)" s
  | faults -> faulty faults

let of_env () =
  match (Sys.getenv_opt "AMOS_NET_CHAOS", Sys.getenv_opt "AMOS_NET_FAULTS") with
  | Some c, _ when String.trim c <> "" -> parse_chaos c
  | _, Some f when String.trim f <> "" -> parse_faults f
  | _ -> default
