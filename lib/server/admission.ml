module Clock = Amos_service.Clock

(* One client's backlog.  [deficit] is the DRR credit in tasks (unit
   cost: every tune is one task); [in_round] says whether the client
   currently holds a slot in the round queue — a client appears there
   at most once. *)
type client_q = {
  ck_key : string;
  ck_weight : int;
  ck_queue : (unit -> unit) Queue.t;
  mutable ck_deficit : int;
  mutable ck_in_round : bool;
}

type t = {
  mutex : Mutex.t;
  clock : Clock.t;
  workers : int;
  capacity : int;
  alpha : float;
  weight_of : string -> int;
  clients : (string, client_q) Hashtbl.t;
  round : client_q Queue.t;
  mutable queued : int;
  mutable running : int;
  mutable ewma : float option;  (* seconds per completed task *)
  mutable closed : bool;
}

let create ?(alpha = 0.3) ?(weight_of = fun _ -> 1) ~clock ~workers ~capacity
    () =
  {
    mutex = Mutex.create ();
    clock;
    workers = max 1 workers;
    capacity = max 1 capacity;
    alpha;
    weight_of;
    clients = Hashtbl.create 16;
    round = Queue.create ();
    queued = 0;
    running = 0;
    ewma = None;
    closed = false;
  }

(* Projected time a freshly admitted task waits before completing:
   every task ahead of it (queued plus running) costs one EWMA'd tune,
   spread over the worker slots.  Before the first completion there is
   no evidence, and the queue admits on depth alone. *)
let projected_wait_locked t =
  match t.ewma with
  | None -> 0.
  | Some e -> e *. float_of_int (t.queued + t.running) /. float_of_int t.workers

let projected_wait t =
  Mutex.lock t.mutex;
  let w = projected_wait_locked t in
  Mutex.unlock t.mutex;
  w

let submit t ~client ?deadline_ms task =
  Mutex.lock t.mutex;
  let r =
    if t.closed || t.queued >= t.capacity then `Busy
    else begin
      let projected = projected_wait_locked t in
      match deadline_ms with
      | Some d when projected > float_of_int d /. 1000. ->
          (* the request would already be dead by the time a worker
             reached it: refuse *before* enqueueing, with the evidence *)
          `Deadline projected
      | _ ->
          let c =
            match Hashtbl.find_opt t.clients client with
            | Some c -> c
            | None ->
                let c =
                  {
                    ck_key = client;
                    ck_weight = max 1 (t.weight_of client);
                    ck_queue = Queue.create ();
                    ck_deficit = 0;
                    ck_in_round = false;
                  }
                in
                Hashtbl.replace t.clients client c;
                c
          in
          Queue.push task c.ck_queue;
          if not c.ck_in_round then begin
            c.ck_in_round <- true;
            Queue.push c t.round
          end;
          t.queued <- t.queued + 1;
          `Admitted
    end
  in
  Mutex.unlock t.mutex;
  r

let note_locked t dt =
  t.ewma <-
    Some
      (match t.ewma with
      | None -> dt
      | Some e -> (t.alpha *. dt) +. ((1. -. t.alpha) *. e))

(* Classic deficit round robin, one task per call.  The head client
   receives a fresh quantum of [max 1 weight] credits when it arrives
   at the head with none, and stays at the head until its quantum is
   spent (or its backlog drains) before rotating to the tail — so every
   full round serves each backlogged client exactly its weight, and no
   visit is ever consumed by bookkeeping alone (rotating on recharge
   would silently tax every client one visit per round, skewing the
   share towards w/(w+1)).  The scan is bounded by the round length:
   each recursive step removes one drained client from the round. *)
let rec pick_locked t guard =
  if guard <= 0 then None
  else
    match Queue.peek_opt t.round with
    | None -> None
    | Some c ->
        if Queue.is_empty c.ck_queue then begin
          (* emptied since it was queued in the round *)
          ignore (Queue.pop t.round);
          c.ck_in_round <- false;
          c.ck_deficit <- 0;
          pick_locked t (guard - 1)
        end
        else begin
          if c.ck_deficit <= 0 then c.ck_deficit <- max 1 c.ck_weight;
          c.ck_deficit <- c.ck_deficit - 1;
          let task = Queue.pop c.ck_queue in
          t.queued <- t.queued - 1;
          if Queue.is_empty c.ck_queue then begin
            ignore (Queue.pop t.round);
            c.ck_in_round <- false;
            c.ck_deficit <- 0
          end
          else if c.ck_deficit <= 0 then begin
            (* quantum spent: to the back of the round *)
            ignore (Queue.pop t.round);
            Queue.push c t.round
          end;
          Some task
        end

let take t =
  Mutex.lock t.mutex;
  let r =
    if t.running >= t.workers then None
    else
      match pick_locked t (1 + Queue.length t.round) with
      | None -> None
      | Some task ->
          t.running <- t.running + 1;
          let started = Clock.now t.clock in
          Some
            (fun () ->
              Fun.protect
                ~finally:(fun () ->
                  let dt = Clock.now t.clock -. started in
                  Mutex.lock t.mutex;
                  t.running <- t.running - 1;
                  note_locked t dt;
                  Mutex.unlock t.mutex)
                task)
  in
  Mutex.unlock t.mutex;
  r

let depth t =
  Mutex.lock t.mutex;
  let d = t.queued in
  Mutex.unlock t.mutex;
  d

let running t =
  Mutex.lock t.mutex;
  let r = t.running in
  Mutex.unlock t.mutex;
  r

let load t =
  Mutex.lock t.mutex;
  let l = t.queued + t.running in
  Mutex.unlock t.mutex;
  l

let ewma t =
  Mutex.lock t.mutex;
  let e = t.ewma in
  Mutex.unlock t.mutex;
  e

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  let stranded = ref [] in
  Queue.iter
    (fun c ->
      Queue.iter (fun task -> stranded := task :: !stranded) c.ck_queue;
      Queue.clear c.ck_queue;
      c.ck_in_round <- false;
      c.ck_deficit <- 0)
    t.round;
  Queue.clear t.round;
  t.queued <- 0;
  Mutex.unlock t.mutex;
  List.rev !stranded
