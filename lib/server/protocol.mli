(** Wire protocol of the plan-serving daemon.

    Framing: every message is one frame — the decimal byte length of
    the payload, a newline, the payload, a newline.  Frames larger than
    {!max_frame_bytes} are rejected before the payload is read, so a
    hostile or corrupt peer cannot make the daemon buffer unbounded
    data.

    Payloads are single-line JSON objects carrying an explicit protocol
    version field ["v"]; a decoder that sees any other version refuses
    the message rather than guessing.  Operators travel either as an
    evaluation-suite reference (ResNet layer label / kind+batch+index)
    or as full DSL text, so a client can request tuning for operators
    the server has never seen.

    Tuned plans travel as {!Amos.Plan_io} text: the client re-binds the
    plan against its own operator and accelerator through
    [Plan_io.load], which re-runs the Algorithm-1 validation — the wire
    cannot introduce a plan that does not validate. *)

val version : int
(** Current protocol version (1). *)

val max_frame_bytes : int
(** Upper bound on a frame payload (4 MiB). *)

type op_spec =
  | Layer of string  (** ResNet-18 layer label, e.g. ["C5"] *)
  | Kind of { kind : string; batch : int; index : int }
      (** evaluation-suite operator, e.g. GMM #0 at batch 16 *)
  | Dsl_text of string  (** full operator in the paper's DSL *)

type request =
  | Health
  | Stats
  | Shutdown  (** drain in-flight work, then stop accepting *)
  | Lookup of { accel : string; op : op_spec; budget : Amos_service.Fingerprint.budget }
      (** cache-only: never triggers tuning *)
  | Tune of { accel : string; op : op_spec; budget : Amos_service.Fingerprint.budget }
  | Migrate_tune of {
      accel : string;
      op : op_spec;
      budget : Amos_service.Fingerprint.budget;
    }
      (** tune warm-started from cross-accelerator plans already in the
          server's cache (see [Amos_service.Migrate]) *)
  | Compile of {
      accel : string;
      network : string;
      batch : int;
      budget : Amos_service.Fingerprint.budget;
      jobs : int;
    }  (** whole-network compile through the plan service *)
  | Cancel of { request_id : int }
      (** detach the waiter that registered [request_id] (the envelope
          field of an earlier streaming request, usually sent on a
          second connection while the first is reading frames): that
          waiter's stream ends with {!Cancelled_r}, the shared
          single-flight exploration keeps running for its co-waiters,
          and the {e last} waiter detaching aborts it at the next
          generation boundary *)

type envelope = {
  env_deadline_ms : int option;
      (** remaining time budget (see {!encode_request}) *)
  env_request_id : int option;
      (** sender-chosen id naming this exchange, so a {!Cancel} from
          another connection can find it *)
  env_accept_stream : bool;
      (** the sender can read {!Progress_r} frames interleaved before
          the final reply; senders that never set it get exactly the
          one-frame exchange of the pre-streaming protocol *)
}
(** Transport metadata riding the request object.  Every field is
    absent on the wire by default — a pre-streaming peer neither sends
    nor sees any of them, so none of this is a version bump. *)

val empty_envelope : envelope

type hello = {
  hello_version : int;  (** protocol version the connector speaks *)
  token : string;  (** shared fleet token (empty when none configured) *)
  peer : bool;
      (** [true] when the connector is another daemon forwarding on
          behalf of a client: requests from peers are never forwarded
          again, which bounds fleet routing to one hop *)
}
(** First frame on every TCP connection; Unix-socket connections are
    local and trusted and skip the handshake. *)

type hello_reply =
  | Hello_ok
  | Hello_denied of string
      (** typed rejection — bad token, unsupported version, or a
          non-hello first frame; the connection is closed after it *)

type plan_wire =
  | Wire_scalar  (** the tuner chose the scalar units *)
  | Wire_spatial of string  (** [Plan_io] text *)

type tune_reply = {
  fingerprint : string;
  plan : plan_wire;
  source : string;
      (** ["hot"], ["cache"], ["tuned"], ["deduped"] — where the server
          found the plan *)
  evaluations : int;
  tuning_seconds : float;
}

type server_stats = {
  uptime_s : float;
  requests : int;  (** frames dispatched *)
  tunes : int;  (** explorations actually run *)
  deduped : int;  (** requests coalesced onto an in-flight tune *)
  hot_hits : int;  (** served from the in-memory front cache *)
  cache_hits : int;  (** served from the plan cache *)
  busy_rejections : int;  (** admission control refusals *)
  in_flight : int;  (** tuning fingerprints currently being explored *)
  queue_load : int;  (** worker-pool queued + running tasks *)
  hot_bytes : int;  (** bytes held by the hot front cache *)
  hot_tuning_seconds : float;
      (** tuning seconds the hot front cache protects *)
  cache_bytes : int;  (** accounted bytes in the persistent cache *)
  quarantine_retunes : int;
      (** quarantined fingerprints re-tuned by the idle drain *)
  forwarded : int;  (** requests routed to their fleet owner *)
  peer_hits : int;  (** forwarded requests the owner served a plan for *)
  peer_fallbacks : int;
      (** forwards abandoned for the local path (owner down or busy) *)
  budget_fallbacks : int;
      (** forwards skipped because the request's remaining deadline
          budget was too small to pay for a fleet hop *)
  auth_rejections : int;  (** TCP handshakes denied *)
  deadline_rejections : int;
      (** tunes refused with {!Deadline_hint_r}: the queue's projected
          wait already exceeded the request's deadline budget *)
  cancels : int;  (** streaming waiters detached by {!Cancel} *)
}

type compile_reply = {
  network : string;
  total_ops : int;
  mapped_ops : int;
  network_seconds : float;
  stages : int;
  comp_cache_hits : int;
  comp_tuned : int;
}

type progress_body = {
  pg_generation : int;
      (** genetic generations completed so far across the exploration *)
  pg_best_predicted : float option;
      (** best model-predicted latency so far (seconds); [None] before
          the first generation completes *)
  pg_best_measured : float option;
      (** best simulator-measured latency so far (seconds); [None]
          before the first measurement *)
  pg_evaluations : int;  (** model evaluations spent so far *)
}
(** One streamed snapshot of an in-flight exploration. *)

type response =
  | Ok_r of string  (** health / shutdown acknowledgement *)
  | Plan_r of tune_reply
  | Not_found_r  (** [Lookup] miss *)
  | Stats_r of server_stats
  | Compiled_r of compile_reply
  | Busy_r of { retry_after_s : float }
      (** admission control: the tuning queue is full; retry after the
          hinted delay *)
  | Error_r of string
  | Progress_r of progress_body
      (** interleaved before the final reply, only on exchanges whose
          request envelope set [accept_stream]; any number may arrive,
          including zero (a cache hit streams nothing) *)
  | Cancelled_r
      (** terminal reply of a streaming exchange detached by {!Cancel} *)
  | Deadline_hint_r of { projected_wait_s : float }
      (** deadline-aware admission: the queue's projected wait already
          exceeds the request's [deadline_ms], so the request was
          refused {e before} enqueueing; the hint carries the projected
          wait so the client can re-budget or go elsewhere *)

(** {2 Codec} *)

val encode_hello : hello -> string

val decode_hello : string -> (hello, string) result
(** Unlike the other decoders this accepts any version field and
    returns it as data: the server denies a version mismatch with a
    typed {!Hello_denied} naming both versions, which requires decoding
    the claim first.  A payload that is not a hello at all (e.g. an old
    client sending a request without the handshake) is an [Error]. *)

val encode_hello_reply : hello_reply -> string
val decode_hello_reply : string -> (hello_reply, string) result

val encode_request :
  ?deadline_ms:int -> ?request_id:int -> ?accept_stream:bool -> request -> string
(** [deadline_ms] is the request's {e remaining time budget}: how many
    milliseconds the sender still considers an answer useful.
    [request_id] names the exchange so a later {!Cancel} can find it;
    [accept_stream] (default [false]) declares the sender reads
    {!Progress_r} frames.  All three travel in the envelope, not the
    request — decoders from before a field existed ignore it, and with
    none of them set the frame is byte-identical to the pre-streaming
    encoding, so none is a version bump. *)

val decode_request : string -> (request * envelope, string) result
(** The decoded request plus its {!envelope}; a request from a
    pre-streaming client decodes with {!empty_envelope}. *)

val encode_response : response -> string
val decode_response : string -> (response, string) result
(** Decoders reject malformed JSON, missing fields, unknown message
    types, and any version field other than {!version}. *)

(** {2 Framing}

    Both directions go through a {!Net_io} handle ([?net], default
    {!Net_io.default} = plain OS I/O), so every socket pathology the
    fault plans can express — short reads, partial writes, resets and
    corruption mid-frame — exercises exactly this code. *)

val write_frame : ?net:Net_io.t -> Unix.file_descr -> string -> unit
(** Raises [Invalid_argument] when the payload exceeds
    {!max_frame_bytes}; [Unix.Unix_error] on I/O failure. *)

val read_frame :
  ?net:Net_io.t -> Unix.file_descr -> (string, [ `Eof | `Bad of string ]) result
(** [`Eof] for a clean end-of-stream before the first header byte;
    [`Bad _] for truncated frames, malformed headers, corrupted bytes,
    and oversized lengths (the payload of an oversized frame is never
    read). *)
