type endpoint = Unix_path of string | Tcp of { host : string; port : int }

let describe = function
  | Unix_path path -> path
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

let parse_tcp s =
  let host, port_s =
    match String.rindex_opt s ':' with
    | None -> ("127.0.0.1", s)
    | Some i ->
        let h = String.sub s 0 i in
        let p = String.sub s (i + 1) (String.length s - i - 1) in
        ((if h = "" then "127.0.0.1" else h), p)
  in
  match int_of_string_opt port_s with
  | Some port when port >= 0 && port <= 65535 -> Ok (host, port)
  | Some port -> Error (Printf.sprintf "port %d out of range" port)
  | None -> Error (Printf.sprintf "bad TCP address %S (want HOST:PORT)" s)

(* numeric addresses (IPv4 and IPv6) skip the resolver entirely; names
   go through getaddrinfo — gethostbyname is obsolete, IPv4-only, and
   not thread-safe on some libcs *)
let resolve_inet host port =
  match Unix.inet_addr_of_string host with
  | addr -> Unix.ADDR_INET (addr, port)
  | exception Failure _ -> (
      let addrs =
        Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
      in
      match
        List.find_map
          (fun ai ->
            match ai.Unix.ai_addr with
            | Unix.ADDR_INET (a, p) -> Some (Unix.ADDR_INET (a, p))
            | Unix.ADDR_UNIX _ -> None)
          addrs
      with
      | Some addr -> addr
      | None -> failwith ("unknown host " ^ host))

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let listen = function
  | Unix_path path ->
      (* a stale socket file from a dead daemon is silently replaced *)
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Unix.bind fd (Unix.ADDR_UNIX path) with
      | () -> Unix.listen fd 64
      | exception e ->
          close_quiet fd;
          raise e);
      fd
  | Tcp { host; port } ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (match
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (resolve_inet host port)
       with
      | () -> Unix.listen fd 64
      | exception e ->
          close_quiet fd;
          raise e);
      fd

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None

let connect ?(net = Net_io.default) ?(timeout_s = 5.) endpoint =
  Net_io.connect net (fun () ->
      match endpoint with
      | Unix_path path ->
          let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (match Unix.connect fd (Unix.ADDR_UNIX path) with
          | () -> fd
          | exception e ->
              close_quiet fd;
              raise e)
      | Tcp { host; port } ->
          let addr = resolve_inet host port in
          let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
          (* non-blocking connect bounded by select: a dead or unroutable
             peer fails within [timeout_s], it can never hang the caller *)
          let conn () =
            Unix.set_nonblock fd;
            (try Unix.connect fd addr
             with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
             -> (
               match Unix.select [] [ fd ] [] (Float.max 0.01 timeout_s) with
               | _, _ :: _, _ -> (
                   match Unix.getsockopt_error fd with
                   | None -> ()
                   | Some err -> raise (Unix.Unix_error (err, "connect", "")))
               | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))));
            Unix.clear_nonblock fd
          in
          (match conn () with
          | () -> fd
          | exception e ->
              close_quiet fd;
              raise e))
