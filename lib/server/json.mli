(** Minimal JSON, just enough for the wire protocol.

    The daemon cannot assume a JSON library in the build environment, so
    this is a small self-contained codec: the seven JSON value shapes, a
    writer, and a recursive-descent reader.  Integers and floats are
    kept distinct ([1] parses as [Int], [1.0] as [Float]) and the writer
    guarantees the distinction survives a round trip — every [Float] is
    printed with a ['.'] or an exponent.  Strings are byte strings:
    UTF-8 passes through untouched, control characters are escaped, and
    [\uXXXX] escapes decode to UTF-8 (no surrogate-pair handling — the
    protocol never emits them).  Non-finite floats are not representable
    in JSON and serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val of_string : string -> (t, string) result
(** Parse exactly one JSON value; trailing non-whitespace is an error.
    Errors carry a byte offset. *)
