(** Client side of the plan-serving daemon.

    Thin, synchronous, one request in flight per connection: connect to
    the daemon's Unix-domain socket, exchange {!Protocol} frames, get a
    typed response.  {!request_retry} additionally honours the daemon's
    admission control — a [Busy] response is retried after the server's
    hinted delay, bounded by an attempt budget, so callers see either a
    real answer or an honest error, never a spin. *)

type t

exception Denied of string
(** The server refused the TCP handshake with a typed reason (bad auth
    token, unsupported protocol version).  Not retried: a denial is a
    configuration problem, not a transient. *)

val connect : ?timeout_s:float -> ?attempts:int -> string -> t
(** Connect to the daemon at the given socket path.  [attempts]
    (default 1) retries the connection at 100 ms intervals — useful
    right after spawning the daemon.  [timeout_s] (default 30) bounds
    each blocking read on the connection.  Raises [Unix.Unix_error]
    when the last attempt fails. *)

val connect_endpoint :
  ?net:Net_io.t ->
  ?timeout_s:float ->
  ?attempts:int ->
  ?token:string ->
  ?peer:bool ->
  Transport.endpoint ->
  t
(** Like {!connect} for any {!Transport.endpoint}.  On TCP the
    connection opens with the {!Protocol.hello} handshake carrying
    [token] (default empty) and the origin ([peer] = [true] marks
    daemon-to-daemon forwarding, which the receiver will not forward
    again); a denial raises {!Denied} without retrying.  Unix-path
    endpoints behave exactly like {!connect}.  [timeout_s] arms both
    [SO_RCVTIMEO] and [SO_SNDTIMEO]: a peer that neither answers nor
    drains can hang neither {!request}'s read nor its write.  [net]
    (default {!Net_io.default}) mediates every byte this connection
    moves, so client-side faults are injectable. *)

val close : t -> unit

val with_conn :
  ?timeout_s:float -> ?attempts:int -> string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exceptions). *)

val with_endpoint :
  ?net:Net_io.t ->
  ?timeout_s:float ->
  ?attempts:int ->
  ?token:string ->
  ?peer:bool ->
  Transport.endpoint ->
  (t -> 'a) ->
  'a
(** {!connect_endpoint}, run, close (also on exceptions). *)

val request :
  ?deadline_ms:int -> t -> Protocol.request -> (Protocol.response, string) result
(** One round trip.  [Error] covers transport failures (connection
    refused mid-stream, timeout, truncated frame) and undecodable
    responses; a server-side [Error_r]/[Busy_r] arrives as [Ok].
    [deadline_ms] stamps the request envelope with the caller's
    remaining time budget (see {!Protocol.encode_request}).

    A timeout, reset, or broken frame {e poisons} the connection: the
    stream may have desynced mid-message, so every later {!request} on
    this [t] returns a typed ["connection poisoned"] error instead of
    risking a reply that belongs to an earlier question.  Recovery is
    a fresh connection. *)

val request_stream :
  ?deadline_ms:int ->
  ?request_id:int ->
  on_progress:(Protocol.progress_body -> unit) ->
  t ->
  Protocol.request ->
  (Protocol.response, string) result
(** Like {!request}, with the envelope's [accept_stream] flag set: the
    server may interleave per-generation progress frames before the
    final reply, each delivered to [on_progress] in order on the
    calling thread.  The returned response is the stream's terminal
    frame — anything {!request} could return, plus [Cancelled_r] when a
    {!cancel} (from another connection) named this [request_id].
    Requests the server answers from cache stream nothing and return
    immediately.  [on_progress] must not raise: an escape mid-stream
    desyncs and poisons the connection. *)

val cancel : t -> request_id:int -> (Protocol.response, string) result
(** Ask the server to cancel the streaming request registered under
    [request_id] (usually in flight on a {e different} connection).
    [Ok_r] when a waiter was detached — its stream terminates with
    [Cancelled_r]; the shared exploration keeps running for any
    co-waiters — [Not_found_r] when no such stream exists (already
    finished, or never streamed). *)

val poisoned : t -> string option
(** Why this connection refuses further requests, if it does. *)

val request_retry :
  ?attempts:int ->
  ?deadline_ms:int ->
  t ->
  Protocol.request ->
  (Protocol.response, string) result
(** Like {!request}, but a [Busy_r] response sleeps the server's
    [retry_after_s] hint and retries, up to [attempts] (default 5)
    total tries; the final [Busy_r] is returned as-is so the caller can
    tell back-pressure from failure. *)
