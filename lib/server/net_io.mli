(** Mediated network layer with deterministic fault injection.

    The socket-facing twin of {!Amos_service.Fs_io}: every byte the
    plan server moves over a socket — frame reads, frame writes, and
    outbound connects — goes through a {!t} handle.  The default
    handle ({!real}, shared as {!default}) passes straight through to
    the OS; a handle built with {!faulty} carries a {e fault plan} of
    one-shot triggers, each firing on the [after]-th call of a given
    operation kind, so the network pathologies that are rare races in
    production — a peer resetting mid-frame, a kernel delivering a
    4-byte read, a stalled-but-alive owner, bit rot on the wire —
    become reproducible, deterministic schedules a unit test can
    assert recovery against.

    {!chaos} builds a handle that faults {e probabilistically} but
    {e deterministically}: each mediated call draws from a private
    seeded generator and fails with the configured rate, cycling
    through the fault classes.  Two runs with the same seed see the
    same fault schedule.  This powers the chaos bench and the
    [AMOS_NET_CHAOS] smoke environment ({!of_env}).

    Faults surface exactly the way the OS would surface them:
    [Reset] and [Timeout] raise [Unix.Unix_error] ([ECONNRESET] /
    [EAGAIN]), [Short] returns a legal partial count the caller's
    read/write loop must absorb, [Corrupt] hands back damaged bytes
    that only the frame decoder can detect.  Only [Fail] raises the
    library-private {!Injected}, for faults that model no specific
    errno. *)

type op =
  | Connect  (** outbound connection establishment *)
  | Read  (** socket reads (frame headers and payloads) *)
  | Write  (** socket writes *)

type mode =
  | Fail of string
      (** the operation does not happen; raises [Injected] *)
  | Reset
      (** raises [Unix.Unix_error (ECONNRESET, _, _)] — the peer
          vanished mid-operation *)
  | Timeout
      (** raises [Unix.Unix_error (EAGAIN, _, _)] — what a socket
          deadline ([SO_RCVTIMEO]/[SO_SNDTIMEO]) expiring looks like *)
  | Stall of float
      (** sleeps that many (real) seconds, then performs the operation
          normally — a slow-but-alive peer *)
  | Short of int
      (** read: deliver at most [n] bytes of what was asked; write:
          write only the first [n] bytes and report that count.  Both
          are legal kernel behaviours a correct caller must loop over. *)
  | Corrupt
      (** perform the operation but damage the bytes (bit-flip), so
          the frame decoder sees garbage.  On [Connect] this degrades
          to [Reset]. *)

type fault = {
  op : op;
  after : int;  (** fire on the [after]-th matching call, counted from 0 *)
  mode : mode;
}

exception Injected of string

type t

val real : unit -> t
(** No faults; plain OS operations. *)

val default : t
(** A shared pass-through handle, the implicit argument everywhere a
    [?net] is omitted. *)

val faulty : fault list -> t
(** Each fault fires once, on the [after]-th call of its [op] kind
    made through this handle, then disarms — exactly like
    {!Amos_service.Fs_io.faulty}. *)

val chaos : ?stall_s:float -> ?classes:mode list -> rate:float -> seed:int -> unit -> t
(** Every mediated call faults with probability [rate], drawing from a
    private deterministic generator seeded with [seed] and cycling
    through [classes] (default: short, stall of [stall_s] (default
    50 ms), reset, corrupt, timeout).  [rate] is clamped to [0,1]. *)

val of_env : unit -> t
(** Build a handle from the environment, for smoke tests that need to
    poison daemons from the outside:

    - [AMOS_NET_CHAOS="rate=0.1,seed=7"] (optional [,stall=0.05])
      builds {!chaos};
    - [AMOS_NET_FAULTS="read:2:reset;write:0:short:10;connect:1:fail:boom"]
      builds {!faulty} from [op:after:mode[:arg]] triples;
    - neither set: {!default}.

    A malformed spec fails fast with [Invalid_argument] rather than
    silently running without faults. *)

val op_count : t -> op -> int
(** How many calls of [op] this handle has mediated (faulted or not). *)

val injected : t -> int
(** How many faults this handle has fired so far. *)

(** {2 Mediated operations} *)

val read : t -> Unix.file_descr -> bytes -> int -> int -> int
(** [read t fd buf off len] like [Unix.read], through the fault plan. *)

val write : t -> Unix.file_descr -> bytes -> int -> int -> int
(** [write t fd buf off len] like [Unix.write], through the fault
    plan.  A [Short] fault writes a prefix and returns its length —
    callers must loop, as with any socket write. *)

val connect : t -> (unit -> Unix.file_descr) -> Unix.file_descr
(** [connect t f] mediates connection establishment: the fault (if
    armed) fires before [f ()] runs, so a refused or stalled connect
    never half-opens a socket. *)
