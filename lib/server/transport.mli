(** Listening and connecting endpoints for the plan daemon.

    The daemon speaks the same {!Protocol} frames over two transports:
    the original Unix-domain socket (local clients, no handshake) and
    TCP (fleet peers and remote clients, which must open with a
    {!Protocol.hello} handshake — see {!Server}).  This module only
    moves file descriptors around; framing and handshakes live a layer
    up. *)

type endpoint =
  | Unix_path of string  (** Unix-domain socket path *)
  | Tcp of { host : string; port : int }
      (** TCP; [port = 0] asks the kernel for an ephemeral port
          (see {!bound_port}) *)

val describe : endpoint -> string
(** Human-readable form: the path, or ["host:port"]. *)

val parse_tcp : string -> (string * int, string) result
(** Parse ["HOST:PORT"], [":PORT"] or ["PORT"] (host defaults to
    127.0.0.1).  The port must be in [0..65535]. *)

val resolve_inet : string -> int -> Unix.sockaddr
(** Resolve a host to an [ADDR_INET].  Numeric IPv4/IPv6 addresses
    never touch the resolver; names go through [getaddrinfo].  Raises
    [Failure] for unknown hosts. *)

val listen : endpoint -> Unix.file_descr
(** Bind and listen (backlog 64).  A stale Unix socket file is
    replaced; TCP listeners set [SO_REUSEADDR].  Raises
    [Unix.Unix_error] when the endpoint is unusable, [Failure] when a
    TCP host does not resolve. *)

val bound_port : Unix.file_descr -> int option
(** The actual port of a TCP listener ([Some] even when bound with
    port 0); [None] for Unix-domain sockets. *)

val connect :
  ?net:Net_io.t -> ?timeout_s:float -> endpoint -> Unix.file_descr
(** Connect to an endpoint.  TCP connects are non-blocking bounded by
    [timeout_s] (default 5): a dead peer surfaces as a
    [Unix.Unix_error] ([ETIMEDOUT], [ECONNREFUSED], ...) within the
    bound, never as a hang.  [net] (default {!Net_io.default})
    mediates the attempt, so connect faults are injectable. *)
