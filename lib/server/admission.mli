(** Fair, deadline-aware admission for the daemon's tuning queue.

    Replaces the global FIFO in front of the worker pool with
    per-client deficit-round-robin (DRR) queues: each client key (from
    the connection handshake) owns a backlog and a [weight], and
    {!take} serves backlogs in weight proportion — a client flooding
    the daemon delays itself, not everyone else.  Tasks have unit cost
    (one tune each), so a weight-[w] client is served [w] tasks per
    round; over any backlogged interval its share of service is within
    one round of [w / total-weight] (the DRR fairness bound pinned by
    the [props.admission] suite).

    Admission is deadline-aware: {!submit} computes the queue's
    {!projected_wait} — the EWMA of recent task durations times queued
    + running tasks over worker slots — and refuses a request whose
    [deadline_ms] budget is already smaller than that projection
    ([`Deadline]), {e before} it is enqueued.  PR 7 put [deadline_ms]
    on the wire; this is the queue finally honoring it.

    Every time read goes through the injectable [Clock], so the whole
    scheduler is tested on a virtual clock with zero real-time waits. *)

module Clock = Amos_service.Clock

type t

val create :
  ?alpha:float ->
  ?weight_of:(string -> int) ->
  clock:Clock.t ->
  workers:int ->
  capacity:int ->
  unit ->
  t
(** [alpha] (default 0.3) is the EWMA smoothing factor for task
    durations.  [weight_of] (default [fun _ -> 1]) assigns each client
    key its DRR weight, read once when the client's queue is created
    (values < 1 are clamped to 1).  [workers] bounds concurrently
    running tasks handed out by {!take}; [capacity] bounds the total
    queued backlog across all clients (both clamped to >= 1). *)

val submit :
  t ->
  client:string ->
  ?deadline_ms:int ->
  (unit -> unit) ->
  [ `Admitted | `Busy | `Deadline of float ]
(** Enqueue a task under [client]'s backlog.  [`Busy] when the total
    backlog is at capacity (or the queue is {!close}d); [`Deadline w]
    when [deadline_ms] is below the projected wait [w] (seconds) — the
    task was {e never} enqueued.  Requests without a deadline are only
    subject to the capacity bound. *)

val take : t -> (unit -> unit) option
(** Hand out the next task per DRR, or [None] when the backlog is
    empty or all [workers] slots are already running.  The returned
    thunk wraps the submitted task with duration accounting: run it
    (exactly once, on any thread) and its measured duration feeds the
    EWMA and releases the worker slot, even if the task raises.
    Work-conserving: whenever the backlog is nonempty and a slot is
    free, [take] returns a task. *)

val projected_wait : t -> float
(** Seconds a task admitted now is projected to wait before
    completing: EWMA x (queued + running) / workers.  [0.] until the
    first task completes (no evidence yet — depth-only admission). *)

val depth : t -> int
(** Tasks currently queued (not yet handed to {!take}). *)

val running : t -> int
(** Tasks handed out by {!take} and not yet finished. *)

val load : t -> int
(** [depth + running] — the congestion signal for the daemon's
    [Stats]. *)

val ewma : t -> float option
(** Current EWMA of task durations in seconds; [None] before the first
    completion. *)

val close : t -> (unit -> unit) list
(** Refuse all future {!submit}s and return every still-queued task in
    an arbitrary fair order, so a shutting-down daemon can resolve
    their flights (e.g. with a busy reply) instead of stranding
    waiters.  Running tasks are unaffected. *)
