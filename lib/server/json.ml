type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- writer -------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* shortest decimal rendering that round-trips, with a forced '.' or
   exponent so the reader keeps Float and Int distinct *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s =
      let short = Printf.sprintf "%.15g" f in
      if float_of_string short = f then short else Printf.sprintf "%.17g" f
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- reader -------------------------------------------------------- *)

exception Parse_error of int * string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (st.pos, msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else fail st ("expected " ^ word)

let utf8_of_code buf c =
  if c < 0x80 then Buffer.add_char buf (Char.chr c)
  else if c < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
  end

let parse_hex4 st =
  let value = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek st with
      | Some ('0' .. '9' as c) -> Char.code c - Char.code '0'
      | Some ('a' .. 'f' as c) -> Char.code c - Char.code 'a' + 10
      | Some ('A' .. 'F' as c) -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "bad \\u escape"
    in
    advance st;
    value := (!value * 16) + d
  done;
  !value

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'u' ->
            advance st;
            utf8_of_code buf (parse_hex4 st);
            (* parse_hex4 leaves pos past the escape; undo the generic
               advance below *)
            st.pos <- st.pos - 1
        | _ -> fail st "bad escape");
        advance st;
        loop ())
    | Some c when Char.code c < 0x20 -> fail st "raw control character"
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume_digits () =
    let got = ref false in
    let rec go () =
      match peek st with
      | Some '0' .. '9' ->
          got := true;
          advance st;
          go ()
      | _ -> ()
    in
    go ();
    if not !got then fail st "expected digit"
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  consume_digits ();
  (match peek st with
  | Some '.' ->
      is_float := true;
      advance st;
      consume_digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [ parse_value st ] in
        let rec loop () =
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items := parse_value st :: !items;
              loop ()
          | Some ']' -> advance st
          | _ -> fail st "expected ',' or ']'"
        in
        loop ();
        List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let member () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let items = ref [ member () ] in
        let rec loop () =
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items := member () :: !items;
              loop ()
          | Some '}' -> advance st
          | _ -> fail st "expected ',' or '}'"
        in
        loop ();
        Obj (List.rev !items)
      end
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "JSON error at byte %d: %s" pos msg)
