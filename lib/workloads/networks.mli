(** Network inventories for the whole-model experiments (Table 2, Fig 7).

    A network is an ordered list of layers with multiplicities.  Layers are
    either tensor operators (candidates for spatial-accelerator mapping) or
    pure elementwise/data-movement ops (ReLU, residual add, softmax,
    channel shuffle, ...) that always run on the scalar units. *)

type layer =
  | Tensor_op of Amos_ir.Operator.t
  | Elementwise of { name : string; elems : int }

type t = {
  name : string;
  batch : int;
  layers : (layer * int) list;  (** layer, multiplicity *)
}

val op_count : t -> int
(** Total number of operator instances (multiplicities included). *)

val tensor_ops : t -> (Amos_ir.Operator.t * int) list

val shufflenet : batch:int -> t
val resnet18 : batch:int -> t
val resnet50 : batch:int -> t
val mobilenet_v1 : batch:int -> t
val bert_base : batch:int -> t
(** seq_len 128, hidden 768, 12 layers, 12 heads. *)

val mi_lstm : batch:int -> t
(** One unrolled step of MI-LSTM, hidden 512; linear layers become
    matrix-vector products at batch 1 (the case XLA fails to map). *)

val mobilenet_v2_depthwise : batch:int -> (string * Amos_ir.Operator.t) list
(** The 7 depthwise layers of MobileNet-V2 used in Fig 8b, plus their
    matching pointwise convolutions ("Conv2d" series of Fig 8b). *)

val all : batch:int -> t list
