open Ops

(* Shapes are drawn from the models cited in the paper: ResNet-18/50,
   MobileNet-V1/V2, ShuffleNet, Bert, MI-LSTM, DeepLab (dilated), Matrix
   Capsules, CondConv, WeightNet, and the scan/statistics kernels. *)

let configs_per_kind ~batch kind =
  let b = batch in
  match kind with
  | GMV ->
      List.map (fun (m, k) -> gemv ~m ~k ())
        [ (512, 512); (1024, 1024); (768, 768); (1000, 512); (2048, 1024);
          (4096, 4096); (512, 2048); (3072, 768) ]
  | GMM ->
      List.map (fun (m, n, k) -> gemm ~m:(b * m) ~n ~k ())
        [ (128, 768, 768); (128, 3072, 768); (128, 768, 3072); (64, 512, 512);
          (256, 1024, 1024); (16, 1000, 2048); (32, 4096, 4096); (512, 512, 64) ]
  | C1D ->
      List.map (fun (c, k, p, r) -> conv1d ~n:b ~c ~k ~p ~r ())
        [ (64, 64, 256, 3); (128, 128, 128, 3); (256, 256, 64, 3);
          (64, 128, 256, 5); (512, 512, 32, 3); (32, 64, 512, 7);
          (128, 256, 128, 9); (256, 512, 64, 3) ]
  | C2D ->
      List.map
        (fun (c, k, p, r, stride) ->
          conv2d ~stride ~n:b ~c ~k ~p ~q:p ~r ~s:r ())
        [ (3, 64, 112, 7, 2); (64, 64, 56, 3, 1); (64, 128, 28, 3, 2);
          (128, 128, 28, 3, 1); (128, 256, 14, 3, 2); (256, 256, 14, 3, 1);
          (256, 512, 7, 3, 2); (512, 512, 7, 3, 1) ]
  | C3D ->
      List.map
        (fun (c, k, d, p, t, r) -> conv3d ~n:b ~c ~k ~d ~p ~q:p ~t ~r ~s:r ())
        [ (3, 64, 8, 56, 3, 3); (64, 64, 8, 28, 3, 3); (64, 128, 4, 28, 3, 3);
          (128, 128, 4, 14, 3, 3); (128, 256, 2, 14, 3, 3);
          (256, 256, 2, 7, 3, 3); (256, 512, 2, 7, 1, 3); (32, 32, 16, 56, 3, 3) ]
  | T2D ->
      List.map
        (fun (c, k, p, r, stride) ->
          transposed_conv2d ~stride ~n:b ~c ~k ~p ~q:p ~r ~s:r ())
        [ (512, 256, 14, 3, 2); (256, 128, 28, 3, 2); (128, 64, 56, 3, 2);
          (64, 32, 112, 3, 2); (512, 512, 7, 3, 1); (1024, 512, 14, 4, 2);
          (256, 256, 28, 4, 2); (64, 64, 112, 3, 2) ]
  | GRP ->
      List.map
        (fun (groups, c, k, p, r) ->
          grouped_conv2d ~groups ~n:b ~c ~k ~p ~q:p ~r ~s:r ())
        [ (4, 24, 24, 56, 1); (4, 48, 48, 28, 1); (4, 96, 96, 14, 1);
          (8, 32, 32, 28, 3); (32, 4, 4, 56, 3); (8, 64, 64, 14, 3);
          (16, 16, 16, 28, 1) ]
  | DIL ->
      List.map
        (fun (c, k, p, r, dilation) ->
          dilated_conv2d ~dilation ~n:b ~c ~k ~p ~q:p ~r ~s:r ())
        [ (256, 256, 28, 3, 2); (512, 512, 14, 3, 2); (512, 512, 14, 3, 4);
          (1024, 1024, 7, 3, 2); (256, 512, 28, 3, 3); (128, 128, 56, 3, 2);
          (64, 64, 56, 3, 4) ]
  | DEP ->
      List.map
        (fun (c, p, r, stride) ->
          depthwise_conv2d ~stride ~n:b ~c ~p ~q:p ~r ~s:r ())
        [ (32, 112, 3, 1); (96, 56, 3, 2); (144, 56, 3, 1); (192, 28, 3, 2);
          (384, 14, 3, 1); (576, 7, 3, 2); (1024, 7, 3, 1); (512, 14, 3, 1) ]
  | CAP ->
      List.map
        (fun (c, k, p, r) -> capsule_conv2d ~n:b ~c ~k ~p ~q:p ~r ~s:r ~cap:4 ())
        [ (8, 16, 12, 3); (16, 16, 6, 3); (16, 32, 6, 3); (32, 32, 4, 3);
          (8, 8, 14, 3); (4, 8, 28, 3); (32, 32, 6, 1) ]
  | BCV ->
      List.map
        (fun (c, k, p, r) -> batched_conv2d ~n:b ~c ~k ~p ~q:p ~r ~s:r ())
        [ (16, 16, 28, 3); (32, 32, 14, 3); (64, 64, 14, 3); (32, 64, 28, 3);
          (64, 128, 7, 3); (128, 128, 7, 3); (16, 32, 56, 3) ]
  | GFC ->
      List.map (fun (g, m, k) -> grouped_fc ~g ~m ~k ())
        [ (8, 64, 64); (16, 64, 64); (8, 128, 128); (16, 128, 128);
          (32, 64, 64); (4, 256, 256); (64, 16, 16) ]
  | MEN ->
      List.map (fun (rows, cols) -> mean ~rows ~cols ())
        [ (64, 1024); (128, 1024); (256, 2048); (49, 1024); (196, 512);
          (784, 256); (512, 4096) ]
  | VAR ->
      List.map (fun (rows, cols) -> variance ~rows ~cols ())
        [ (64, 1024); (128, 1024); (256, 2048); (49, 1024); (196, 512);
          (784, 256); (512, 4096) ]
  | SCN ->
      List.map (fun (n, len) -> scan ~n ~len ())
        [ (64, 128); (128, 128); (64, 256); (32, 512); (256, 64); (16, 1024);
          (128, 256); (8, 2048) ]

let operator_suite ~batch =
  List.concat_map
    (fun kind ->
      List.map (fun op -> (kind, op)) (configs_per_kind ~batch kind))
    all_kinds

let total ~batch = List.length (operator_suite ~batch)

let representative ~batch kind =
  match configs_per_kind ~batch kind with
  | [] -> invalid_arg "Suites.representative: empty kind"
  | _ :: second :: _ -> second
  | [ only ] -> only
