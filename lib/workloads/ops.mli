(** The operator zoo of the paper's evaluation (Sec 7.3): GMV, GMM, C1D,
    C2D, C3D, T2D, GRP, DIL, DEP, CAP, BCV, GFC, MEN, VAR, SCN — plus
    max-pooling (used by networks, inherently not mappable to MAC units).

    Convolutions take {e output} spatial sizes; the input spatial extent is
    derived as [(out-1)*stride + (window-1)*dilation + 1] (inputs are
    assumed pre-padded, see DESIGN.md).  All constructors return operators
    with canonical iteration order (spatial iterations first). *)

open Amos_ir

val gemv : ?name:string -> m:int -> k:int -> unit -> Operator.t
(** out[i] += a[i, r] * x[r] *)

val gemm : ?name:string -> m:int -> n:int -> k:int -> unit -> Operator.t
(** out[i, j] += a[i, r] * b[r, j] *)

val batched_gemm :
  ?name:string -> b:int -> m:int -> n:int -> k:int -> unit -> Operator.t
(** out[b, i, j] += a[b, i, r] * bm[b, r, j] *)

val conv1d :
  ?name:string ->
  ?stride:int ->
  n:int -> c:int -> k:int -> p:int -> r:int -> unit -> Operator.t

val conv2d :
  ?name:string ->
  ?stride:int ->
  ?dilation:int ->
  n:int -> c:int -> k:int -> p:int -> q:int -> r:int -> s:int -> unit ->
  Operator.t
(** out[n,k,p,q] += in[n, c, p*stride + r*dil, q*stride + s*dil]
                    * w[k, c, r, s] *)

val conv2d_nhwc :
  ?name:string ->
  ?stride:int ->
  n:int -> c:int -> k:int -> p:int -> q:int -> r:int -> s:int -> unit ->
  Operator.t
(** Channels-last layout: out[n,p,q,k] += in[n, p+r, q+s, c] * w[r,s,c,k].
    Same iteration structure as {!conv2d} (AMOS is layout-agnostic); only
    the memory coalescing behaviour differs. *)

val conv3d :
  ?name:string ->
  ?stride:int ->
  n:int -> c:int -> k:int -> d:int -> p:int -> q:int -> t:int -> r:int ->
  s:int -> unit -> Operator.t

val transposed_conv2d :
  ?name:string ->
  stride:int ->
  n:int -> c:int -> k:int -> p:int -> q:int -> r:int -> s:int -> unit ->
  Operator.t
(** Implemented as a stride-1 convolution over the zero-dilated input (the
    standard lowering); [p, q] are output sizes of the transposed conv. *)

val grouped_conv2d :
  ?name:string ->
  ?stride:int ->
  groups:int ->
  n:int -> c:int -> k:int -> p:int -> q:int -> r:int -> s:int -> unit ->
  Operator.t
(** [c] and [k] are per-group channel counts.
    out[n,g,k,p,q] += in[n, g, c, p+r, q+s] * w[g, k, c, r, s] *)

val dilated_conv2d :
  ?name:string ->
  dilation:int ->
  n:int -> c:int -> k:int -> p:int -> q:int -> r:int -> s:int -> unit ->
  Operator.t

val depthwise_conv2d :
  ?name:string ->
  ?stride:int ->
  n:int -> c:int -> p:int -> q:int -> r:int -> s:int -> unit -> Operator.t
(** out[n,c,p,q] += in[n, c, p+r, q+s] * w[c, r, s] *)

val capsule_conv2d :
  ?name:string ->
  n:int -> c:int -> k:int -> p:int -> q:int -> r:int -> s:int ->
  cap:int -> unit -> Operator.t
(** Matrix-capsule convolution: every (input-channel, output-channel) pair
    multiplies [cap x cap] pose matrices.
    out[n,k,p,q,u,v] += in[n,c,p+r,q+s,u,w] * wt[k,c,r,s,w,v] *)

val batched_conv2d :
  ?name:string ->
  n:int -> c:int -> k:int -> p:int -> q:int -> r:int -> s:int -> unit ->
  Operator.t
(** CondConv-style: per-sample kernels.
    out[n,k,p,q] += in[n,c,p+r,q+s] * w[n,k,c,r,s] *)

val grouped_fc :
  ?name:string -> g:int -> m:int -> k:int -> unit -> Operator.t
(** WeightNet-style grouped fully-connected:
    out[g,i] += in[g, r] * w[g, i, r] *)

val mean : ?name:string -> rows:int -> cols:int -> unit -> Operator.t
(** out[j] = (1/rows) * sum_i x[i, j] *)

val variance : ?name:string -> rows:int -> cols:int -> unit -> Operator.t
(** out[j] = (1/rows) * sum_i (x[i,j] - mu[j])^2; inputs are [x; mu]. *)

val scan : ?name:string -> n:int -> len:int -> unit -> Operator.t
(** Inclusive prefix sum: out[n, i] = sum_{j <= i} x[n, j]. *)

val maxpool2d :
  ?name:string ->
  ?stride:int ->
  n:int -> c:int -> p:int -> q:int -> r:int -> s:int -> unit -> Operator.t
(** out[n,c,p,q] = max over the window; not mappable to MAC intrinsics. *)

(** Operator kinds, for suites and reporting. *)
type kind =
  | GMV | GMM | C1D | C2D | C3D | T2D | GRP | DIL | DEP | CAP | BCV | GFC
  | MEN | VAR | SCN

val kind_name : kind -> string
val all_kinds : kind list
