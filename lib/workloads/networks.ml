type layer =
  | Tensor_op of Amos_ir.Operator.t
  | Elementwise of { name : string; elems : int }

type t = {
  name : string;
  batch : int;
  layers : (layer * int) list;
}

let op_count t = List.fold_left (fun acc (_, m) -> acc + m) 0 t.layers

let tensor_ops t =
  List.filter_map
    (function Tensor_op op, m -> Some (op, m) | Elementwise _, _ -> None)
    t.layers

let ew name elems = (Elementwise { name; elems }, 1)
let ewn name elems n = (Elementwise { name; elems }, n)
let top ?(mult = 1) op = (Tensor_op op, mult)

let shufflenet ~batch =
  (* ShuffleNet v1-like (g = 4): stem conv, 16 units of
     (1x1 grouped, 3x3 depthwise, 1x1 grouped), global pool, fc.
     49 convs + 1 fc = 50 mappable; 20 elementwise = 70 total (Table 2). *)
  let b = batch in
  let unit_convs ~c ~p ~stride =
    [
      top (Ops.grouped_conv2d ~name:"shuffle-g1x1a" ~groups:4 ~n:b ~c:(c / 4)
             ~k:(c / 4) ~p ~q:p ~r:1 ~s:1 ());
      top (Ops.depthwise_conv2d ~name:"shuffle-dw3x3" ~stride ~n:b ~c
             ~p:(p / stride) ~q:(p / stride) ~r:3 ~s:3 ());
      top (Ops.grouped_conv2d ~name:"shuffle-g1x1b" ~groups:4 ~n:b ~c:(c / 4)
             ~k:(c / 4) ~p:(p / stride) ~q:(p / stride) ~r:1 ~s:1 ());
    ]
  in
  let stage ~units ~c ~p =
    List.concat (List.init units (fun i -> unit_convs ~c ~p ~stride:(if i = 0 then 2 else 1)))
  in
  let layers =
    [ top (Ops.conv2d ~name:"stem" ~stride:2 ~n:b ~c:3 ~k:24 ~p:56 ~q:56 ~r:3 ~s:3 ()) ]
    @ stage ~units:4 ~c:96 ~p:56
    @ stage ~units:8 ~c:192 ~p:28
    @ stage ~units:4 ~c:384 ~p:14
    @ [
        top (Ops.gemm ~name:"fc" ~m:b ~n:1000 ~k:768 ());
        ewn "channel-shuffle" (b * 192 * 28 * 28) 16;
        ewn "relu" (b * 192 * 28 * 28) 2;
        ew "maxpool-stem" (b * 24 * 56 * 56);
        ew "global-pool" (b * 768 * 7 * 7);
      ]
  in
  { name = "ShuffleNet"; batch; layers }

let resnet18 ~batch =
  let conv label mult = top ~mult (Resnet.config ~batch (Resnet.by_label label)) in
  let layers =
    [
      conv "C0" 1; conv "C1" 4; conv "C3" 1; conv "C4" 1; conv "C5" 3;
      conv "C6" 1; conv "C7" 1; conv "C8" 3; conv "C9" 1; conv "C10" 1;
      conv "C11" 3;
      top (Ops.gemm ~name:"fc" ~m:batch ~n:1000 ~k:512 ());
      top (Ops.maxpool2d ~name:"maxpool" ~n:batch ~c:64 ~p:56 ~q:56 ~r:3 ~s:3 ());
      ewn "relu" (batch * 64 * 56 * 56) 17;
      ewn "residual-add" (batch * 128 * 28 * 28) 8;
      ew "global-pool" (batch * 512 * 7 * 7);
    ]
  in
  { name = "ResNet-18"; batch; layers }

let resnet50 ~batch =
  let b = batch in
  let bottleneck ~cin ~cmid ~p ~stride ~mult =
    [
      top ~mult (Ops.conv2d ~name:"res50-1x1a" ~n:b ~c:cin ~k:cmid ~p ~q:p ~r:1 ~s:1 ());
      top ~mult
        (Ops.conv2d ~name:"res50-3x3" ~stride ~n:b ~c:cmid ~k:cmid
           ~p:(p / stride) ~q:(p / stride) ~r:3 ~s:3 ());
      top ~mult
        (Ops.conv2d ~name:"res50-1x1b" ~n:b ~c:cmid ~k:(cmid * 4)
           ~p:(p / stride) ~q:(p / stride) ~r:1 ~s:1 ());
    ]
  in
  let downsample ~cin ~cout ~p ~stride =
    top (Ops.conv2d ~name:"res50-down" ~stride ~n:b ~c:cin ~k:cout
           ~p:(p / stride) ~q:(p / stride) ~r:1 ~s:1 ())
  in
  let layers =
    [ top (Resnet.config ~batch (Resnet.by_label "C0")) ]
    @ bottleneck ~cin:64 ~cmid:64 ~p:56 ~stride:1 ~mult:3
    @ [ downsample ~cin:64 ~cout:256 ~p:56 ~stride:1 ]
    @ bottleneck ~cin:256 ~cmid:128 ~p:56 ~stride:2 ~mult:4
    @ [ downsample ~cin:256 ~cout:512 ~p:56 ~stride:2 ]
    @ bottleneck ~cin:512 ~cmid:256 ~p:28 ~stride:2 ~mult:6
    @ [ downsample ~cin:512 ~cout:1024 ~p:28 ~stride:2 ]
    @ bottleneck ~cin:1024 ~cmid:512 ~p:14 ~stride:2 ~mult:3
    @ [ downsample ~cin:1024 ~cout:2048 ~p:14 ~stride:2 ]
    @ [
        top (Ops.gemm ~name:"fc" ~m:b ~n:1000 ~k:2048 ());
        ewn "relu" (b * 256 * 56 * 56) 10;
        ewn "residual-add" (b * 512 * 28 * 28) 5;
        ew "maxpool" (b * 64 * 112 * 112);
        ew "global-pool" (b * 2048 * 7 * 7);
      ]
  in
  { name = "ResNet-50"; batch; layers }

let mobilenet_v1 ~batch =
  let b = batch in
  let dw_pw ~c ~k ~p ~stride ~mult =
    [
      top ~mult
        (Ops.depthwise_conv2d ~name:"mbv1-dw" ~stride ~n:b ~c ~p:(p / stride)
           ~q:(p / stride) ~r:3 ~s:3 ());
      top ~mult
        (Ops.conv2d ~name:"mbv1-pw" ~n:b ~c ~k ~p:(p / stride) ~q:(p / stride)
           ~r:1 ~s:1 ());
    ]
  in
  let layers =
    [ top (Ops.conv2d ~name:"stem" ~stride:2 ~n:b ~c:3 ~k:32 ~p:112 ~q:112 ~r:3 ~s:3 ()) ]
    @ dw_pw ~c:32 ~k:64 ~p:112 ~stride:1 ~mult:1
    @ dw_pw ~c:64 ~k:128 ~p:112 ~stride:2 ~mult:1
    @ dw_pw ~c:128 ~k:128 ~p:56 ~stride:1 ~mult:1
    @ dw_pw ~c:128 ~k:256 ~p:56 ~stride:2 ~mult:1
    @ dw_pw ~c:256 ~k:256 ~p:28 ~stride:1 ~mult:1
    @ dw_pw ~c:256 ~k:512 ~p:28 ~stride:2 ~mult:1
    @ dw_pw ~c:512 ~k:512 ~p:14 ~stride:1 ~mult:5
    @ dw_pw ~c:512 ~k:1024 ~p:14 ~stride:2 ~mult:1
    @ dw_pw ~c:1024 ~k:1024 ~p:7 ~stride:1 ~mult:1
    @ [
        top (Ops.mean ~name:"global-avg-pool" ~rows:49 ~cols:(b * 1024) ());
        top (Ops.gemm ~name:"fc" ~m:b ~n:1000 ~k:1024 ());
        ew "softmax" (b * 1000);
      ]
  in
  { name = "MobileNet-V1"; batch; layers }

let bert_base ~batch =
  let b = batch in
  let seq = 128 and hidden = 768 and heads = 12 and ffn = 3072 in
  let head_dim = hidden / heads in
  let per_layer =
    [
      top (Ops.gemm ~name:"q-proj" ~m:(b * seq) ~n:hidden ~k:hidden ());
      top (Ops.gemm ~name:"k-proj" ~m:(b * seq) ~n:hidden ~k:hidden ());
      top (Ops.gemm ~name:"v-proj" ~m:(b * seq) ~n:hidden ~k:hidden ());
      top (Ops.batched_gemm ~name:"attn-scores" ~b:(b * heads) ~m:seq ~n:seq ~k:head_dim ());
      top (Ops.batched_gemm ~name:"attn-context" ~b:(b * heads) ~m:seq ~n:head_dim ~k:seq ());
      top (Ops.gemm ~name:"out-proj" ~m:(b * seq) ~n:hidden ~k:hidden ());
      top (Ops.gemm ~name:"ffn-1" ~m:(b * seq) ~n:ffn ~k:hidden ());
      top (Ops.gemm ~name:"ffn-2" ~m:(b * seq) ~n:hidden ~k:ffn ());
      ew "softmax" (b * heads * seq * seq);
      ew "gelu" (b * seq * ffn);
      ewn "layernorm" (b * seq * hidden) 2;
      ewn "residual-add" (b * seq * hidden) 2;
      ewn "dropout-mask" (b * seq * hidden) 3;
    ]
  in
  { name = "Bert-Base"; batch; layers = List.concat (List.init 12 (fun _ -> per_layer)) }

let mi_lstm ~batch =
  let b = batch in
  let hidden = 512 in
  let linear name = top (Ops.gemm ~name ~m:b ~n:hidden ~k:hidden ()) in
  let layers =
    [
      linear "Wx-i"; linear "Wx-f"; linear "Wx-o"; linear "Wx-c";
      linear "Uh-i"; linear "Uh-f"; linear "Uh-o"; linear "Uh-c";
      linear "proj";
      ew "gates-mul-int" (b * hidden * 4);
      ew "state-update" (b * hidden);
    ]
  in
  { name = "MI-LSTM"; batch; layers }

let mobilenet_v2_depthwise ~batch =
  let b = batch in
  let dep i c p stride =
    ( Printf.sprintf "dep%d" i,
      Ops.depthwise_conv2d ~name:(Printf.sprintf "mbv2-dw%d" i) ~stride ~n:b
        ~c ~p:(p / stride) ~q:(p / stride) ~r:3 ~s:3 () )
  in
  let pw i c k p =
    ( Printf.sprintf "conv%d" i,
      Ops.conv2d ~name:(Printf.sprintf "mbv2-pw%d" i) ~n:b ~c ~k ~p ~q:p ~r:1
        ~s:1 () )
  in
  [
    dep 1 32 112 1;   pw 1 32 16 112;
    dep 2 96 112 2;   pw 2 96 24 56;
    dep 3 144 56 1;   pw 3 144 24 56;
    dep 4 144 56 2;   pw 4 144 32 28;
    dep 5 192 28 1;   pw 5 192 32 28;
    dep 6 384 14 1;   pw 6 384 64 14;
    dep 7 576 14 2;   pw 7 576 96 7;
  ]

let all ~batch =
  [
    shufflenet ~batch; resnet18 ~batch; resnet50 ~batch;
    mobilenet_v1 ~batch; bert_base ~batch; mi_lstm ~batch;
  ]
