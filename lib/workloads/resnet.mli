(** ResNet convolution layer configurations.

    [c0]..[c11] are the twelve distinct 2D-convolution layers of ResNet-18
    exactly as listed in Table 5 of the paper (n, c, k, p, q, r, s, stride).
    The batch size defaults to 16 as in the table. *)

type config = {
  label : string;
  n : int;
  c : int;
  k : int;
  p : int;
  q : int;
  r : int;
  s : int;
  stride : int;
}

val table5 : config list
(** C0 .. C11, in order. *)

val config : ?batch:int -> config -> Amos_ir.Operator.t
(** Instantiate a config as a C2D operator (optionally overriding batch). *)

val scaled : factor:int -> config -> config
(** Divide channels and spatial sizes by [factor] (min 1 each); used to run
    functional checks at tractable sizes while keeping the structure. *)

val by_label : string -> config
(** Raises [Not_found] for an unknown label. *)
