(** The single-operator benchmark suite of Sec 7.3: 113 configurations
    drawn from real networks, 7–8 per operator kind. *)

val operator_suite : batch:int -> (Ops.kind * Amos_ir.Operator.t) list
(** All configurations, grouped by kind in the order of Fig 6. *)

val configs_per_kind : batch:int -> Ops.kind -> Amos_ir.Operator.t list
val total : batch:int -> int
val representative : batch:int -> Ops.kind -> Amos_ir.Operator.t
(** One mid-sized configuration per kind (used for mapping counts,
    Table 6). *)
