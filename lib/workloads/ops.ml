open Amos_ir

let in_extent ~out ~window ~stride ~dilation =
  ((out - 1) * stride) + ((window - 1) * dilation) + 1

let gemv ?(name = "gemv") ~m ~k () =
  let i = Iter.create "i" m and r = Iter.reduction "r" k in
  let out = Tensor_decl.create "out" [ m ] in
  let a = Tensor_decl.create "a" [ m; k ] in
  let x = Tensor_decl.create "x" [ k ] in
  Operator.create ~name ~iters:[ i; r ]
    ~output:(Operator.access out [ Affine.of_iter i ])
    ~inputs:
      [
        Operator.access a [ Affine.of_iter i; Affine.of_iter r ];
        Operator.access x [ Affine.of_iter r ];
      ]
    ~arith:Operator.Mul_add ()

let gemm ?(name = "gemm") ~m ~n ~k () =
  let i = Iter.create "i" m
  and j = Iter.create "j" n
  and r = Iter.reduction "r" k in
  let out = Tensor_decl.create "out" [ m; n ] in
  let a = Tensor_decl.create "a" [ m; k ] in
  let b = Tensor_decl.create "b" [ k; n ] in
  Operator.create ~name ~iters:[ i; j; r ]
    ~output:(Operator.access out [ Affine.of_iter i; Affine.of_iter j ])
    ~inputs:
      [
        Operator.access a [ Affine.of_iter i; Affine.of_iter r ];
        Operator.access b [ Affine.of_iter r; Affine.of_iter j ];
      ]
    ~arith:Operator.Mul_add ()

let batched_gemm ?(name = "bgemm") ~b ~m ~n ~k () =
  let bb = Iter.create "b" b
  and i = Iter.create "i" m
  and j = Iter.create "j" n
  and r = Iter.reduction "r" k in
  let out = Tensor_decl.create "out" [ b; m; n ] in
  let a = Tensor_decl.create "a" [ b; m; k ] in
  let bm = Tensor_decl.create "bm" [ b; k; n ] in
  Operator.create ~name ~iters:[ bb; i; j; r ]
    ~output:
      (Operator.access out
         [ Affine.of_iter bb; Affine.of_iter i; Affine.of_iter j ])
    ~inputs:
      [
        Operator.access a
          [ Affine.of_iter bb; Affine.of_iter i; Affine.of_iter r ];
        Operator.access bm
          [ Affine.of_iter bb; Affine.of_iter r; Affine.of_iter j ];
      ]
    ~arith:Operator.Mul_add ()

let conv1d ?(name = "c1d") ?(stride = 1) ~n ~c ~k ~p ~r () =
  let h = in_extent ~out:p ~window:r ~stride ~dilation:1 in
  let ni = Iter.create "n" n
  and ki = Iter.create "k" k
  and pi = Iter.create "p" p
  and ci = Iter.reduction "c" c
  and ri = Iter.reduction "r" r in
  let out = Tensor_decl.create "out" [ n; k; p ] in
  let image = Tensor_decl.create "image" [ n; c; h ] in
  let weight = Tensor_decl.create "weight" [ k; c; r ] in
  Operator.create ~name ~iters:[ ni; ki; pi; ci; ri ]
    ~output:
      (Operator.access out
         [ Affine.of_iter ni; Affine.of_iter ki; Affine.of_iter pi ])
    ~inputs:
      [
        Operator.access image
          [
            Affine.of_iter ni;
            Affine.of_iter ci;
            Affine.add (Affine.scaled pi stride) (Affine.of_iter ri);
          ];
        Operator.access weight
          [ Affine.of_iter ki; Affine.of_iter ci; Affine.of_iter ri ];
      ]
    ~arith:Operator.Mul_add ()

let conv2d ?(name = "c2d") ?(stride = 1) ?(dilation = 1) ~n ~c ~k ~p ~q ~r ~s
    () =
  let h = in_extent ~out:p ~window:r ~stride ~dilation in
  let w = in_extent ~out:q ~window:s ~stride ~dilation in
  let ni = Iter.create "n" n
  and ki = Iter.create "k" k
  and pi = Iter.create "p" p
  and qi = Iter.create "q" q
  and ci = Iter.reduction "c" c
  and ri = Iter.reduction "r" r
  and si = Iter.reduction "s" s in
  let out = Tensor_decl.create "out" [ n; k; p; q ] in
  let image = Tensor_decl.create "image" [ n; c; h; w ] in
  let weight = Tensor_decl.create "weight" [ k; c; r; s ] in
  let idx it step win = Affine.add (Affine.scaled it step) (Affine.scaled win dilation) in
  Operator.create ~name ~iters:[ ni; ki; pi; qi; ci; ri; si ]
    ~output:
      (Operator.access out
         [
           Affine.of_iter ni; Affine.of_iter ki; Affine.of_iter pi;
           Affine.of_iter qi;
         ])
    ~inputs:
      [
        Operator.access image
          [ Affine.of_iter ni; Affine.of_iter ci; idx pi stride ri; idx qi stride si ];
        Operator.access weight
          [
            Affine.of_iter ki; Affine.of_iter ci; Affine.of_iter ri;
            Affine.of_iter si;
          ];
      ]
    ~arith:Operator.Mul_add ()

let conv2d_nhwc ?(name = "c2d-nhwc") ?(stride = 1) ~n ~c ~k ~p ~q ~r ~s () =
  let h = in_extent ~out:p ~window:r ~stride ~dilation:1 in
  let w = in_extent ~out:q ~window:s ~stride ~dilation:1 in
  let ni = Iter.create "n" n
  and ki = Iter.create "k" k
  and pi = Iter.create "p" p
  and qi = Iter.create "q" q
  and ci = Iter.reduction "c" c
  and ri = Iter.reduction "r" r
  and si = Iter.reduction "s" s in
  let out = Tensor_decl.create "out" [ n; p; q; k ] in
  let image = Tensor_decl.create "image" [ n; h; w; c ] in
  let weight = Tensor_decl.create "weight" [ r; s; c; k ] in
  let win o v = Affine.add (Affine.scaled o stride) (Affine.of_iter v) in
  Operator.create ~name ~iters:[ ni; ki; pi; qi; ci; ri; si ]
    ~output:
      (Operator.access out
         [
           Affine.of_iter ni; Affine.of_iter pi; Affine.of_iter qi;
           Affine.of_iter ki;
         ])
    ~inputs:
      [
        Operator.access image
          [ Affine.of_iter ni; win pi ri; win qi si; Affine.of_iter ci ];
        Operator.access weight
          [
            Affine.of_iter ri; Affine.of_iter si; Affine.of_iter ci;
            Affine.of_iter ki;
          ];
      ]
    ~arith:Operator.Mul_add ()

let conv3d ?(name = "c3d") ?(stride = 1) ~n ~c ~k ~d ~p ~q ~t ~r ~s () =
  let dd = in_extent ~out:d ~window:t ~stride ~dilation:1 in
  let h = in_extent ~out:p ~window:r ~stride ~dilation:1 in
  let w = in_extent ~out:q ~window:s ~stride ~dilation:1 in
  let ni = Iter.create "n" n
  and ki = Iter.create "k" k
  and di = Iter.create "d" d
  and pi = Iter.create "p" p
  and qi = Iter.create "q" q
  and ci = Iter.reduction "c" c
  and ti = Iter.reduction "t" t
  and ri = Iter.reduction "r" r
  and si = Iter.reduction "s" s in
  let out = Tensor_decl.create "out" [ n; k; d; p; q ] in
  let image = Tensor_decl.create "image" [ n; c; dd; h; w ] in
  let weight = Tensor_decl.create "weight" [ k; c; t; r; s ] in
  let win o v = Affine.add (Affine.scaled o stride) (Affine.of_iter v) in
  Operator.create ~name ~iters:[ ni; ki; di; pi; qi; ci; ti; ri; si ]
    ~output:
      (Operator.access out
         [
           Affine.of_iter ni; Affine.of_iter ki; Affine.of_iter di;
           Affine.of_iter pi; Affine.of_iter qi;
         ])
    ~inputs:
      [
        Operator.access image
          [ Affine.of_iter ni; Affine.of_iter ci; win di ti; win pi ri; win qi si ];
        Operator.access weight
          [
            Affine.of_iter ki; Affine.of_iter ci; Affine.of_iter ti;
            Affine.of_iter ri; Affine.of_iter si;
          ];
      ]
    ~arith:Operator.Mul_add ()

let transposed_conv2d ?(name = "t2d") ~stride ~n ~c ~k ~p ~q ~r ~s () =
  (* Output-size (p, q) transposed conv over a [hi x wi] input lowered to a
     stride-1 conv over the zero-dilated (stride-inserted) input. *)
  ignore stride;
  conv2d ~name ~stride:1 ~n ~c ~k ~p ~q ~r ~s ()

let grouped_conv2d ?(name = "grp") ?(stride = 1) ~groups ~n ~c ~k ~p ~q ~r ~s
    () =
  let h = in_extent ~out:p ~window:r ~stride ~dilation:1 in
  let w = in_extent ~out:q ~window:s ~stride ~dilation:1 in
  let ni = Iter.create "n" n
  and gi = Iter.create "g" groups
  and ki = Iter.create "k" k
  and pi = Iter.create "p" p
  and qi = Iter.create "q" q
  and ci = Iter.reduction "c" c
  and ri = Iter.reduction "r" r
  and si = Iter.reduction "s" s in
  let out = Tensor_decl.create "out" [ n; groups; k; p; q ] in
  let image = Tensor_decl.create "image" [ n; groups; c; h; w ] in
  let weight = Tensor_decl.create "weight" [ groups; k; c; r; s ] in
  let win o v = Affine.add (Affine.scaled o stride) (Affine.of_iter v) in
  Operator.create ~name ~iters:[ ni; gi; ki; pi; qi; ci; ri; si ]
    ~output:
      (Operator.access out
         [
           Affine.of_iter ni; Affine.of_iter gi; Affine.of_iter ki;
           Affine.of_iter pi; Affine.of_iter qi;
         ])
    ~inputs:
      [
        Operator.access image
          [
            Affine.of_iter ni; Affine.of_iter gi; Affine.of_iter ci;
            win pi ri; win qi si;
          ];
        Operator.access weight
          [
            Affine.of_iter gi; Affine.of_iter ki; Affine.of_iter ci;
            Affine.of_iter ri; Affine.of_iter si;
          ];
      ]
    ~arith:Operator.Mul_add ()

let dilated_conv2d ?(name = "dil") ~dilation ~n ~c ~k ~p ~q ~r ~s () =
  conv2d ~name ~dilation ~n ~c ~k ~p ~q ~r ~s ()

let depthwise_conv2d ?(name = "dep") ?(stride = 1) ~n ~c ~p ~q ~r ~s () =
  let h = in_extent ~out:p ~window:r ~stride ~dilation:1 in
  let w = in_extent ~out:q ~window:s ~stride ~dilation:1 in
  let ni = Iter.create "n" n
  and ci = Iter.create "c" c
  and pi = Iter.create "p" p
  and qi = Iter.create "q" q
  and ri = Iter.reduction "r" r
  and si = Iter.reduction "s" s in
  let out = Tensor_decl.create "out" [ n; c; p; q ] in
  let image = Tensor_decl.create "image" [ n; c; h; w ] in
  let weight = Tensor_decl.create "weight" [ c; r; s ] in
  let win o v = Affine.add (Affine.scaled o stride) (Affine.of_iter v) in
  Operator.create ~name ~iters:[ ni; ci; pi; qi; ri; si ]
    ~output:
      (Operator.access out
         [
           Affine.of_iter ni; Affine.of_iter ci; Affine.of_iter pi;
           Affine.of_iter qi;
         ])
    ~inputs:
      [
        Operator.access image
          [ Affine.of_iter ni; Affine.of_iter ci; win pi ri; win qi si ];
        Operator.access weight
          [ Affine.of_iter ci; Affine.of_iter ri; Affine.of_iter si ];
      ]
    ~arith:Operator.Mul_add ()

let capsule_conv2d ?(name = "cap") ~n ~c ~k ~p ~q ~r ~s ~cap () =
  let h = p + r - 1 and w = q + s - 1 in
  let ni = Iter.create "n" n
  and ki = Iter.create "k" k
  and pi = Iter.create "p" p
  and qi = Iter.create "q" q
  and ui = Iter.create "u" cap
  and vi = Iter.create "v" cap
  and ci = Iter.reduction "c" c
  and ri = Iter.reduction "r" r
  and si = Iter.reduction "s" s
  and wi = Iter.reduction "w" cap in
  let out = Tensor_decl.create "out" [ n; k; p; q; cap; cap ] in
  let image = Tensor_decl.create "image" [ n; c; h; w; cap; cap ] in
  let weight = Tensor_decl.create "weight" [ k; c; r; s; cap; cap ] in
  let win o v = Affine.add (Affine.of_iter o) (Affine.of_iter v) in
  Operator.create ~name
    ~iters:[ ni; ki; pi; qi; ui; vi; ci; ri; si; wi ]
    ~output:
      (Operator.access out
         [
           Affine.of_iter ni; Affine.of_iter ki; Affine.of_iter pi;
           Affine.of_iter qi; Affine.of_iter ui; Affine.of_iter vi;
         ])
    ~inputs:
      [
        Operator.access image
          [
            Affine.of_iter ni; Affine.of_iter ci; win pi ri; win qi si;
            Affine.of_iter ui; Affine.of_iter wi;
          ];
        Operator.access weight
          [
            Affine.of_iter ki; Affine.of_iter ci; Affine.of_iter ri;
            Affine.of_iter si; Affine.of_iter wi; Affine.of_iter vi;
          ];
      ]
    ~arith:Operator.Mul_add ()

let batched_conv2d ?(name = "bcv") ~n ~c ~k ~p ~q ~r ~s () =
  let h = p + r - 1 and w = q + s - 1 in
  let ni = Iter.create "n" n
  and ki = Iter.create "k" k
  and pi = Iter.create "p" p
  and qi = Iter.create "q" q
  and ci = Iter.reduction "c" c
  and ri = Iter.reduction "r" r
  and si = Iter.reduction "s" s in
  let out = Tensor_decl.create "out" [ n; k; p; q ] in
  let image = Tensor_decl.create "image" [ n; c; h; w ] in
  let weight = Tensor_decl.create "weight" [ n; k; c; r; s ] in
  let win o v = Affine.add (Affine.of_iter o) (Affine.of_iter v) in
  Operator.create ~name ~iters:[ ni; ki; pi; qi; ci; ri; si ]
    ~output:
      (Operator.access out
         [
           Affine.of_iter ni; Affine.of_iter ki; Affine.of_iter pi;
           Affine.of_iter qi;
         ])
    ~inputs:
      [
        Operator.access image
          [ Affine.of_iter ni; Affine.of_iter ci; win pi ri; win qi si ];
        Operator.access weight
          [
            Affine.of_iter ni; Affine.of_iter ki; Affine.of_iter ci;
            Affine.of_iter ri; Affine.of_iter si;
          ];
      ]
    ~arith:Operator.Mul_add ()

let grouped_fc ?(name = "gfc") ~g ~m ~k () =
  let gi = Iter.create "g" g
  and ii = Iter.create "i" m
  and ri = Iter.reduction "r" k in
  let out = Tensor_decl.create "out" [ g; m ] in
  let x = Tensor_decl.create "x" [ g; k ] in
  let w = Tensor_decl.create "w" [ g; m; k ] in
  Operator.create ~name ~iters:[ gi; ii; ri ]
    ~output:(Operator.access out [ Affine.of_iter gi; Affine.of_iter ii ])
    ~inputs:
      [
        Operator.access x [ Affine.of_iter gi; Affine.of_iter ri ];
        Operator.access w
          [ Affine.of_iter gi; Affine.of_iter ii; Affine.of_iter ri ];
      ]
    ~arith:Operator.Mul_add ()

let mean ?(name = "mean") ~rows ~cols () =
  let ii = Iter.reduction "i" rows and ji = Iter.create "j" cols in
  let out = Tensor_decl.create "out" [ cols ] in
  let x = Tensor_decl.create "x" [ rows; cols ] in
  Operator.create ~name ~iters:[ ji; ii ]
    ~post_scale:(1. /. float_of_int rows)
    ~output:(Operator.access out [ Affine.of_iter ji ])
    ~inputs:[ Operator.access x [ Affine.of_iter ii; Affine.of_iter ji ] ]
    ~arith:Operator.Add_acc ()

let variance ?(name = "var") ~rows ~cols () =
  let ii = Iter.reduction "i" rows and ji = Iter.create "j" cols in
  let out = Tensor_decl.create "out" [ cols ] in
  let x = Tensor_decl.create "x" [ rows; cols ] in
  let mu = Tensor_decl.create "mu" [ cols ] in
  Operator.create ~name ~iters:[ ji; ii ]
    ~post_scale:(1. /. float_of_int rows)
    ~output:(Operator.access out [ Affine.of_iter ji ])
    ~inputs:
      [
        Operator.access x [ Affine.of_iter ii; Affine.of_iter ji ];
        Operator.access mu [ Affine.of_iter ji ];
      ]
    ~arith:Operator.Sq_diff_acc ()

let scan ?(name = "scan") ~n ~len () =
  let ni = Iter.create "n" n
  and ii = Iter.create "i" len
  and ji = Iter.reduction "j" len in
  let out = Tensor_decl.create "out" [ n; len ] in
  let x = Tensor_decl.create "x" [ n; len ] in
  Operator.create ~name ~iters:[ ni; ii; ji ]
    ~preds:[ Predicate.le (Affine.of_iter ji) (Affine.of_iter ii) ]
    ~output:(Operator.access out [ Affine.of_iter ni; Affine.of_iter ii ])
    ~inputs:[ Operator.access x [ Affine.of_iter ni; Affine.of_iter ji ] ]
    ~arith:Operator.Add_acc ()

let maxpool2d ?(name = "maxpool") ?(stride = 2) ~n ~c ~p ~q ~r ~s () =
  let h = in_extent ~out:p ~window:r ~stride ~dilation:1 in
  let w = in_extent ~out:q ~window:s ~stride ~dilation:1 in
  let ni = Iter.create "n" n
  and ci = Iter.create "c" c
  and pi = Iter.create "p" p
  and qi = Iter.create "q" q
  and ri = Iter.reduction "r" r
  and si = Iter.reduction "s" s in
  let out = Tensor_decl.create "out" [ n; c; p; q ] in
  let image = Tensor_decl.create "image" [ n; c; h; w ] in
  let win o v = Affine.add (Affine.scaled o stride) (Affine.of_iter v) in
  Operator.create ~name ~iters:[ ni; ci; pi; qi; ri; si ]
    ~init:neg_infinity
    ~output:
      (Operator.access out
         [
           Affine.of_iter ni; Affine.of_iter ci; Affine.of_iter pi;
           Affine.of_iter qi;
         ])
    ~inputs:
      [
        Operator.access image
          [ Affine.of_iter ni; Affine.of_iter ci; win pi ri; win qi si ];
      ]
    ~arith:Operator.Max_acc ()

type kind =
  | GMV | GMM | C1D | C2D | C3D | T2D | GRP | DIL | DEP | CAP | BCV | GFC
  | MEN | VAR | SCN

let kind_name = function
  | GMV -> "GMV" | GMM -> "GMM" | C1D -> "C1D" | C2D -> "C2D" | C3D -> "C3D"
  | T2D -> "T2D" | GRP -> "GRP" | DIL -> "DIL" | DEP -> "DEP" | CAP -> "CAP"
  | BCV -> "BCV" | GFC -> "GFC" | MEN -> "MEN" | VAR -> "VAR" | SCN -> "SCN"

let all_kinds =
  [ GMV; GMM; C1D; C2D; C3D; T2D; GRP; DIL; DEP; CAP; BCV; GFC; MEN; VAR; SCN ]
