type config = {
  label : string;
  n : int;
  c : int;
  k : int;
  p : int;
  q : int;
  r : int;
  s : int;
  stride : int;
}

let mk label c k p r stride =
  { label; n = 16; c; k; p; q = p; r; s = r; stride }

let table5 =
  [
    mk "C0" 3 64 112 7 2;
    mk "C1" 64 64 56 3 1;
    mk "C2" 64 64 56 1 1;
    mk "C3" 64 128 28 3 2;
    mk "C4" 64 128 28 1 2;
    mk "C5" 128 128 28 3 1;
    mk "C6" 128 256 14 3 2;
    mk "C7" 128 256 14 1 2;
    mk "C8" 256 256 14 3 1;
    mk "C9" 256 512 7 3 2;
    mk "C10" 256 512 7 1 2;
    mk "C11" 512 512 7 3 1;
  ]

let config ?batch c =
  let n = match batch with Some b -> b | None -> c.n in
  Ops.conv2d ~name:c.label ~stride:c.stride ~n ~c:c.c ~k:c.k ~p:c.p ~q:c.q
    ~r:c.r ~s:c.s ()

let scaled ~factor c =
  let f x = max 1 (x / factor) in
  {
    c with
    n = f c.n;
    c = f c.c;
    k = f c.k;
    p = f c.p;
    q = f c.q;
  }

let by_label l = List.find (fun c -> c.label = l) table5
