(** Template-based compiler baselines (AutoTVM / UNIT / Ansor emulation,
    Sec 7.3): one fixed hand-written mapping template plus schedule-only
    tuning; a layout restriction can make the template fail to match
    entirely (AutoTVM's NHWC-only Tensor Core templates), in which case
    the compiler falls back to scalar code.

    [`Ansor] has no Tensor Core generation rules at all: it searches
    schedules for the scalar units only (with a better-optimized scalar
    efficiency than naive code). *)

open Amos_ir

type template =
  | Im2col  (** AutoTVM-Expert-style *)
  | Fuse_hw  (** UNIT-style: ignores the batch dimension *)
  | Ansor  (** no spatial intrinsics; tuned scalar code *)

val op_seconds :
  ?require_extent_mult:int ->
  template:template ->
  rng:Amos_tensor.Rng.t ->
  Amos.Accelerator.t ->
  Operator.t ->
  float
(** [require_extent_mult] (e.g. 16) emulates fragile layout patterns:
    the template only matches when every mapped fused extent is a
    multiple of it. *)

val network_seconds :
  ?require_extent_mult:int ->
  template:template ->
  rng:Amos_tensor.Rng.t ->
  Amos.Accelerator.t ->
  Amos_workloads.Networks.t ->
  float
