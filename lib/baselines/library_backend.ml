open Amos_ir

open Amos
module Networks = Amos_workloads.Networks

let column (op : Operator.t) it =
  let accs = op.Operator.output :: op.Operator.inputs in
  List.map (fun acc -> Operator.uses_iter acc it) accs

let supported (op : Operator.t) =
  match (op.Operator.arith, op.Operator.inputs) with
  | Operator.Mul_add, [ _; _ ] ->
      (not
         (List.exists
            (fun it -> column op it = [ true; true; true ])
            op.Operator.iters))
      && List.length op.Operator.iters <= 9
  | _ -> false

(* Unsupported operators run generic fallback kernels: poor access
   patterns for exotic layouts keep them well below the bandwidth
   roofline, and the eager-mode framework adds per-op dispatch cost. *)
let fallback_seconds accel op =
  Spatial_sim.Scalar_backend.estimate_seconds ~efficiency:0.35
    ~memory_efficiency:0.55 ~dispatch_overhead_us:8. accel.Accelerator.config
    op

(* The library ships a handful of hand-written kernels per operator and a
   heuristic picker (like cuDNN's algorithm selection): the im2col mapping
   with a few canned schedules, no per-shape search. *)
let canned_schedules rng m =
  Schedule.default m :: List.init 3 (fun _ -> Schedule.random rng m)

let op_seconds ~rng accel op =
  if not (supported op) then fallback_seconds accel op
  else
    match Fixed_mappings.im2col op (Accelerator.primary_intrinsic accel) with
    | None -> fallback_seconds accel op
    | Some matching ->
        let m = Mapping.make matching in
        let best =
          List.fold_left
            (fun acc sched ->
              let k = Codegen.lower accel m sched in
              Float.min acc
                (Spatial_sim.Machine.estimate_seconds accel.Accelerator.config k))
            infinity (canned_schedules rng m)
        in
        if best < infinity then best else fallback_seconds accel op

let network_seconds ~rng accel (net : Networks.t) =
  List.fold_left
    (fun acc (layer, mult) ->
      let t =
        match layer with
        | Networks.Tensor_op op -> op_seconds ~rng accel op
        | Networks.Elementwise { elems; _ } ->
            Spatial_sim.Scalar_backend.estimate_elementwise
              accel.Accelerator.config ~elems
      in
      acc +. (float_of_int mult *. t))
    0. net.Networks.layers
