(** The fixed mappings that hand-tuned libraries and template compilers
    hard-code (Sec 7.6): [im2col] (CuDNN-style — fuse everything
    compatible into each intrinsic dimension) and [fuse_hw] (UNIT-style —
    only the spatial output dims to [i1], only the channel to [r1],
    ignoring the batch dimension). *)

open Amos_ir

val maximal : Operator.t -> Amos.Intrinsic.t -> Amos.Matching.t option
(** The im2col-style mapping: every software iteration that is compatible
    with some intrinsic iteration is mapped (first compatible dimension).
    [None] when invalid or the operator has no MAC view. *)

val im2col : Operator.t -> Amos.Intrinsic.t -> Amos.Matching.t option
(** Alias of [maximal] (its effect on convolutions is exactly im2col:
    [n,p,q -> i1], [k -> i2], [c,r,s -> r1]). *)

val fuse_hw :
  Operator.t -> Amos.Intrinsic.t -> Amos.Matching.t option
(** UNIT's template: iterations named [p]/[q] to the first spatial
    dimension, [k] to the second, [c] alone to the reduction; the batch
    is ignored.  [None] when the operator lacks those iterations or the
    result is invalid. *)

val by_names :
  Operator.t ->
  Amos.Intrinsic.t ->
  (string * int) list ->
  Amos.Matching.t option
(** Generic fixed template: software iteration name -> intrinsic
    iteration position.  [None] when names are missing or the mapping is
    invalid (template mismatch — the fragility the paper describes). *)
