open Amos_ir
module Networks = Amos_workloads.Networks

type verdict =
  | Tensor_core
  | Fallback of string

let column (op : Operator.t) it =
  let accs = op.Operator.output :: op.Operator.inputs in
  List.map (fun acc -> Operator.uses_iter acc it) accs

let classify (op : Operator.t) =
  match (op.Operator.arith, op.Operator.inputs) with
  | (Operator.Add_acc | Operator.Sq_diff_acc | Operator.Max_acc), _ ->
      Fallback "not a multiply-accumulate pattern"
  | Operator.Mul_add, [ _; _ ] ->
      let shared_everywhere =
        List.filter
          (fun it -> column op it = [ true; true; true ])
          op.Operator.iters
      in
      if shared_everywhere <> [] then
        Fallback
          (Printf.sprintf "iteration %s shared by all operands (grouped/depthwise/per-sample)"
             (List.hd shared_everywhere).Iter.name)
      else if
        List.exists
          (fun (acc : Operator.access) ->
            List.exists
              (fun a ->
                List.exists (fun it -> abs (Affine.coeff a it) >= 2)
                  (Affine.iters a))
              acc.Operator.index)
          op.Operator.inputs
      then Fallback "strided or dilated access"
      else if List.length op.Operator.iters > 9 then
        Fallback "rank too high for the GEMM template"
      else
        (* the GEMM pattern needs full tiles on every matched dimension *)
        let m_extent =
          List.fold_left
            (fun acc it ->
              if column op it = [ true; true; false ] then
                acc * it.Iter.extent
              else acc)
            1 op.Operator.iters
        in
        let n_extent =
          List.fold_left
            (fun acc it ->
              if column op it = [ true; false; true ] then
                acc * it.Iter.extent
              else acc)
            1 op.Operator.iters
        in
        if m_extent < 16 then Fallback "matrix-vector shape (m < 16)"
        else if n_extent < 16 then Fallback "matrix-vector shape (n < 16)"
        else Tensor_core
  | Operator.Mul_add, _ -> Fallback "unsupported operand arity"

let mapped_count (net : Networks.t) =
  List.fold_left
    (fun acc (layer, mult) ->
      match layer with
      | Networks.Tensor_op op when classify op = Tensor_core -> acc + mult
      | Networks.Tensor_op _ | Networks.Elementwise _ -> acc)
    0 net.Networks.layers

let op_seconds accel op =
  let open Amos in
  match classify op with
  | Tensor_core -> (
      match Fixed_mappings.im2col op (Accelerator.primary_intrinsic accel) with
      | Some matching ->
          let m = Mapping.make matching in
          let k = Codegen.lower accel m (Schedule.default m) in
          let est =
            Spatial_sim.Machine.estimate accel.Accelerator.config k
          in
          if est.Spatial_sim.Machine.feasible then
            est.Spatial_sim.Machine.seconds
          else
            Spatial_sim.Scalar_backend.estimate_seconds
              accel.Accelerator.config op
      | None ->
          Spatial_sim.Scalar_backend.estimate_seconds ~memory_efficiency:0.55
            accel.Accelerator.config op)
  | Fallback _ ->
      Spatial_sim.Scalar_backend.estimate_seconds ~memory_efficiency:0.55
        accel.Accelerator.config op

let network_seconds accel (net : Networks.t) =
  List.fold_left
    (fun acc (layer, mult) ->
      let t =
        match layer with
        | Networks.Tensor_op op -> op_seconds accel op
        | Networks.Elementwise { elems; _ } ->
            Spatial_sim.Scalar_backend.estimate_elementwise
              accel.Amos.Accelerator.config ~elems
      in
      acc +. (float_of_int mult *. t))
    0. net.Networks.layers
