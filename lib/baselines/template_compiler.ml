open Amos
module Networks = Amos_workloads.Networks

type template =
  | Im2col
  | Fuse_hw
  | Ansor

let template_matching template op intr =
  match template with
  | Im2col -> Fixed_mappings.im2col op intr
  | Fuse_hw -> Fixed_mappings.fuse_hw op intr
  | Ansor -> None

let extent_ok ~require_extent_mult (m : Mapping.t) =
  match require_extent_mult with
  | None -> true
  | Some mult ->
      Array.for_all
        (fun (fd : Mapping.fused_dim) ->
          fd.Mapping.sw_iters = [] || fd.Mapping.fused_extent mod mult = 0)
        m.Mapping.fused

let scalar ?(efficiency = 0.35) ?(memory_efficiency = 0.7) accel op =
  Spatial_sim.Scalar_backend.estimate_seconds ~efficiency ~memory_efficiency
    accel.Accelerator.config op

let op_seconds ?require_extent_mult ~template ~rng accel op =
  match template with
  | Ansor -> scalar ~efficiency:0.55 ~memory_efficiency:0.9 accel op
  | Im2col | Fuse_hw -> (
      match
        template_matching template op (Accelerator.primary_intrinsic accel)
      with
      | None -> scalar accel op
      | Some matching ->
          let m = Mapping.make matching in
          if not (extent_ok ~require_extent_mult m) then scalar accel op
          else
            let result =
              Explore.tune ~population:16 ~generations:8 ~measure_top:4 ~rng
                ~accel ~mappings:[ m ] ()
            in
            let t = result.Explore.best.Explore.measured in
            if t < infinity then t else scalar accel op)

let network_seconds ?require_extent_mult ~template ~rng accel
    (net : Networks.t) =
  List.fold_left
    (fun acc (layer, mult) ->
      let t =
        match layer with
        | Networks.Tensor_op op ->
            op_seconds ?require_extent_mult ~template ~rng accel op
        | Networks.Elementwise { elems; _ } ->
            Spatial_sim.Scalar_backend.estimate_elementwise
              accel.Accelerator.config ~elems
      in
      acc +. (float_of_int mult *. t))
    0. net.Networks.layers
