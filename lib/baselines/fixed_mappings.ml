open Amos_ir
open Amos

let build view intr assign_fn =
  let op = view.Mac_view.op in
  let iters = op.Operator.iters in
  let assign = Array.of_list (List.map assign_fn iters) in
  let src_perm =
    Array.init (List.length view.Mac_view.srcs) (fun i -> i)
  in
  let m = Matching.create ~view ~intr ~src_perm ~assign in
  if Matching.validate m then Some m else None

let maximal op intr =
  match Mac_view.of_operator op with
  | None -> None
  | Some view ->
      let src_perm = [| 0; 1 |] in
      let cands = Mapping_gen.candidates view intr ~src_perm in
      build view intr (fun it ->
          match List.find_opt (fun (s, _) -> Iter.equal s it) cands with
          | Some (_, k :: _) -> Some k
          | Some (_, []) | None -> None)

let im2col = maximal

let by_names op intr table =
  match Mac_view.of_operator op with
  | None -> None
  | Some view ->
      let intr_iters =
        Array.of_list intr.Intrinsic.compute.Compute_abs.iters
      in
      let missing =
        List.exists
          (fun (name, _) ->
            not
              (List.exists
                 (fun (it : Iter.t) -> it.Iter.name = name)
                 op.Operator.iters))
          table
      in
      if missing then None
      else
        build view intr (fun (it : Iter.t) ->
            match List.assoc_opt it.Iter.name table with
            | Some pos when pos < Array.length intr_iters ->
                Some intr_iters.(pos)
            | Some _ | None -> None)

let fuse_hw op intr =
  let n_intr = List.length intr.Intrinsic.compute.Compute_abs.iters in
  if n_intr < 3 then by_names op intr [ ("p", 0); ("q", 0); ("c", 1) ]
  else by_names op intr [ ("p", 0); ("q", 0); ("k", 1); ("c", 2) ]
