(** An XLA-style pattern matcher (the motivating example, Sec 2.3 /
    Table 2): operators reach the Tensor Core only when they match a
    rigid matrix-multiplication pattern; everything else — depthwise,
    grouped, strided and dilated convolutions, matrix-vector products,
    batched attention matmuls — falls back to the scalar units. *)

open Amos_ir

type verdict =
  | Tensor_core
  | Fallback of string  (** the reason the pattern failed to match *)

val classify : Operator.t -> verdict

val mapped_count : Amos_workloads.Networks.t -> int
(** Number of operator instances of a network the matcher maps — the
    "XLA Mapped" column of Table 2. *)

val network_seconds :
  Amos.Accelerator.t -> Amos_workloads.Networks.t -> float
(** End-to-end time with matched ops on the im2col fixed mapping and all
    other ops on the scalar units. *)
