(** A CuDNN/CuBLAS/PyTorch-like hand-optimized library baseline.

    Supported operators (plain GEMM and the standard convolution family)
    run with the fixed im2col mapping and a well-engineered but fixed
    schedule; operators the libraries do not implement on the spatial
    units (grouped / depthwise / per-sample convolutions, grouped FC,
    reductions, scans) fall back to the scalar units — the behaviour the
    paper exploits to beat PyTorch on ShuffleNet/MobileNet (Sec 7.4). *)

open Amos_ir

val supported : Operator.t -> bool
val op_seconds :
  rng:Amos_tensor.Rng.t -> Amos.Accelerator.t -> Operator.t -> float

val network_seconds :
  rng:Amos_tensor.Rng.t ->
  Amos.Accelerator.t ->
  Amos_workloads.Networks.t ->
  float
