# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples clean

all: build test

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/resnet_layer.exe
	dune exec examples/new_accelerator.exe
	dune exec examples/network_coverage.exe
	dune exec examples/mini_cnn.exe

clean:
	dune clean
